//! Many-user query multiplexing over one deployment.
//!
//! The paper evaluates one mobile user per trial; the roadmap's target is
//! hundreds of concurrent users served by the same sensor network. This
//! module runs a [`QuerySet`] of `N` users — each with its own trajectory,
//! motion profiles and staggered query lifetime, all derived from the
//! scenario seed through [`wsn_sim::mix_seed`] — over the substrate built by
//! [`super::deploy::Deployment`], and multiplexes their per-period query
//! trees through the reference-counted [`wsn_net::TreeCache`].
//!
//! **Sharing is provably result-identical per user.** Both sharing modes
//! quantise each user's predicted pickup point to a lattice cell of side
//! `Rq` before building a tree, so a shared tree's construction inputs are
//! bit-identical to what the naive one-tree-per-user path would use;
//! [`TreeSharing::Naive`] builds every tree afresh through an independent
//! scratch (never touching the cache) and serves as the reference
//! implementation, in the style of `elect_backbone_reference`. All random
//! scoring draws come from per-query streams
//! `mix_seed(seed, [QUERY_STREAM, user, k])`, and contention depends only on
//! the (pure) count of concurrently active users — so shared and naive runs
//! produce byte-identical per-user [`QueryLog`]s, which
//! `tree_cache_equivalence` proptests and the `tree_sharing` bench assert.
//!
//! Since the service refactor the actual period machinery lives in
//! [`super::stepped::SteppedSim`]; [`MultiSimulation`] is the batch
//! run-to-completion façade over it, byte-identical to the retired
//! event-queue implementation (the golden multiuser JSON pins this).

use crate::config::Scenario;
use crate::error::ConfigError;
use crate::sim::stepped::SteppedSim;
use wsn_metrics::{QueryLog, UserSummary};
use wsn_mobility::{generate_fleet, MotionProfile, UserMotion};
use wsn_sim::{mix_seed, SimRng};

/// Stream tag for each user's query-lifetime window draw.
const LIFETIME_STREAM: u64 = 0x11FE_0000_0000_0002;

/// Whether overlapping query areas share flood trees through the cache or
/// every query builds its own tree (the reference implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeSharing {
    /// One reference-counted tree per distinct `(collector, cell, radius)`
    /// key, shared by every query that maps to it.
    Shared,
    /// One fresh tree per query install — the one-tree-per-user baseline the
    /// shared path is proven equal to.
    Naive,
}

impl TreeSharing {
    /// Stable lower-case name, used in JSON documents and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            TreeSharing::Shared => "shared",
            TreeSharing::Naive => "naive",
        }
    }
}

/// One user of a multi-user trial: identity, motion, profiles and the
/// staggered window of query periods the user is active in.
#[derive(Debug, Clone, PartialEq)]
pub struct UserQuery {
    /// Fleet index of the user.
    pub user: usize,
    /// The user's derived seed (base for its downstream streams).
    pub seed: u64,
    /// Ground-truth trajectory.
    pub motion: UserMotion,
    /// Motion profiles delivered for this user, sorted by `effective_from`.
    pub profiles: Vec<MotionProfile>,
    /// First query period the user is active in (1-based).
    pub first_k: u64,
    /// Last query period the user is active in (inclusive).
    pub last_k: u64,
}

impl UserQuery {
    /// Returns `true` when the user issues a query in period `k`.
    pub fn active_in(&self, k: u64) -> bool {
        self.first_k <= k && k <= self.last_k
    }

    /// Number of queries the user issues over its lifetime window.
    pub fn query_count(&self) -> u64 {
        self.last_k.saturating_sub(self.first_k) + 1
    }
}

/// The set of concurrent users of one multi-user trial.
///
/// A pure function of `(scenario, users)`: user `u` is derived from
/// `mix_seed(scenario.seed, [FLEET_STREAM, u])` and its lifetime window from
/// `mix_seed(user_seed, [LIFETIME_STREAM])`, so the set is identical across
/// job counts, sharing modes and fleet sizes (prefix-stable in `users`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySet {
    users: Vec<UserQuery>,
    max_k: u64,
}

impl QuerySet {
    /// Generates the fleet and each user's staggered lifetime window.
    ///
    /// User 0 spans the full query lifetime (the single-user convention, and
    /// a guarantee that every period has at least one active user); each
    /// further user draws its window start and end from its own stream,
    /// covering at least half the lifetime.
    pub fn generate(scenario: &Scenario, users: usize) -> Self {
        let max_k = scenario.query.result_count();
        let fleet = generate_fleet(
            &scenario.motion,
            scenario.profile_source,
            users,
            scenario.seed,
        );
        let users = fleet
            .into_iter()
            .map(|member| {
                let (first_k, last_k) = if member.index == 0 {
                    (1, max_k)
                } else {
                    let mut rng = SimRng::seed_from_u64(mix_seed(member.seed, &[LIFETIME_STREAM]));
                    let span = (max_k / 4).max(1) as usize;
                    let mut first = 1 + rng.gen_range_usize(0, span) as u64;
                    let mut last = max_k - rng.gen_range_usize(0, span) as u64;
                    if first > last {
                        std::mem::swap(&mut first, &mut last);
                    }
                    (first.clamp(1, max_k), last.clamp(first, max_k))
                };
                UserQuery {
                    user: member.index,
                    seed: member.seed,
                    motion: member.motion,
                    profiles: member.profiles,
                    first_k,
                    last_k,
                }
            })
            .collect();
        QuerySet { users, max_k }
    }

    /// Builds a query set from explicit users — the replay path: a schedule
    /// recorded by the service's load generator rerun as a batch trial.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a user's index differs from its
    /// position (fleet order is identity) or its window falls outside
    /// `1..=max_k`.
    pub fn from_users(users: Vec<UserQuery>, max_k: u64) -> Result<Self, ConfigError> {
        for (index, user) in users.iter().enumerate() {
            if user.user != index {
                return Err(ConfigError::new(format!(
                    "user at position {index} carries fleet index {}",
                    user.user
                )));
            }
            if user.first_k < 1 || user.first_k > user.last_k || user.last_k > max_k {
                return Err(ConfigError::new(format!(
                    "user {index} window [{}, {}] outside 1..={max_k}",
                    user.first_k, user.last_k
                )));
            }
        }
        Ok(QuerySet { users, max_k })
    }

    /// Appends an admitted user. The caller ([`SteppedSim::admit`]) has
    /// already validated index order and the lifetime window.
    pub(crate) fn push(&mut self, user: UserQuery) {
        self.users.push(user);
    }

    /// Rewrites `user`'s last active period. The caller
    /// ([`SteppedSim::retire_at`]) has already clamped it into the window.
    pub(crate) fn set_last_k(&mut self, user: usize, last_k: u64) {
        self.users[user].last_k = last_k;
    }

    /// The users, in fleet order.
    pub fn users(&self) -> &[UserQuery] {
        &self.users
    }

    /// Number of users in the set.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` for an empty set.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The number of query periods of the underlying scenario.
    pub fn max_k(&self) -> u64 {
        self.max_k
    }

    /// Number of users active in period `k` — the contention level every
    /// query of that period is scored under. Pure, so every sharing mode and
    /// job count sees the same concurrency.
    pub fn active_users(&self, k: u64) -> usize {
        self.users.iter().filter(|u| u.active_in(k)).count()
    }

    /// Total number of query installs over the whole trial.
    pub fn total_queries(&self) -> u64 {
        self.users.iter().map(|u| u.query_count()).sum()
    }
}

/// Aggregated output of one multi-user run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiUserOutput {
    /// Number of users simulated.
    pub users: usize,
    /// The sharing mode the run used.
    pub sharing: TreeSharing,
    /// Per-user success/fidelity, in fleet order.
    pub per_user: Vec<UserSummary>,
    /// The raw per-user query logs (index = fleet index). The equivalence
    /// suite compares these byte for byte between sharing modes.
    pub logs: Vec<QueryLog>,
    /// Total query installs (= naive trees the baseline would build).
    pub installs: u64,
    /// Trees actually built under the selected mode.
    pub trees_built: u64,
    /// Cache acquisitions served by an existing tree (0 in naive mode).
    pub shared_hits: u64,
    /// Most trees simultaneously live (equals in-flight installs in naive
    /// mode).
    pub peak_live_trees: usize,
    /// Sleeping-node wake seconds paid under the selected mode.
    pub node_wake_seconds: f64,
    /// Sleeping-node wake seconds the naive baseline pays for the same
    /// installs.
    pub node_wake_seconds_naive: f64,
    /// Events processed by the engine (period installs plus query resolves).
    pub events_processed: u64,
    /// Backbone size of the deployment.
    pub backbone_count: usize,
    /// Deployment size.
    pub node_count: usize,
}

impl MultiUserOutput {
    /// Mean per-user success ratio (users that issued no query count as 0).
    pub fn mean_success_ratio(&self) -> f64 {
        if self.per_user.is_empty() {
            return 0.0;
        }
        self.per_user.iter().map(|u| u.success_ratio).sum::<f64>() / self.per_user.len() as f64
    }

    /// Worst per-user success ratio — is *every* user served, not just the
    /// average one?
    pub fn min_success_ratio(&self) -> f64 {
        self.per_user
            .iter()
            .map(|u| u.success_ratio)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Mean per-user fidelity.
    pub fn mean_fidelity(&self) -> f64 {
        if self.per_user.is_empty() {
            return 0.0;
        }
        self.per_user.iter().map(|u| u.mean_fidelity).sum::<f64>() / self.per_user.len() as f64
    }

    /// Trees built over trees the naive baseline builds, in `(0, 1]`:
    /// 1.0 means no sharing happened, small values mean most installs joined
    /// an existing tree.
    pub fn sharing_ratio(&self) -> f64 {
        if self.installs == 0 {
            return 1.0;
        }
        self.trees_built as f64 / self.installs as f64
    }
}

/// A fully constructed multi-user simulation, ready to run to completion.
///
/// A thin façade over [`SteppedSim`]: the batch API generates the query set,
/// walks every period boundary and aggregates the output in one call.
#[derive(Debug)]
pub struct MultiSimulation {
    stepped: SteppedSim,
}

impl MultiSimulation {
    /// Builds the deployment substrate (identical to the single-user
    /// [`super::Simulation`], same RNG forks) and an `users`-strong query
    /// set over it.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the scenario fails validation or
    /// `users` is zero.
    pub fn new(
        scenario: Scenario,
        users: usize,
        sharing: TreeSharing,
    ) -> Result<Self, ConfigError> {
        scenario.validate()?;
        if users == 0 {
            return Err(ConfigError::new("a multi-user run needs at least one user"));
        }
        let query_set = QuerySet::generate(&scenario, users);
        Self::with_query_set(scenario, query_set, sharing)
    }

    /// Builds the same substrate around an explicit query set — the replay
    /// path that pins a recorded service schedule to the batch engine.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the scenario fails validation or the
    /// query set's horizon disagrees with the scenario's period count.
    pub fn with_query_set(
        scenario: Scenario,
        query_set: QuerySet,
        sharing: TreeSharing,
    ) -> Result<Self, ConfigError> {
        Ok(MultiSimulation {
            stepped: SteppedSim::new(scenario, query_set, sharing)?,
        })
    }

    /// The query set of this run.
    pub fn query_set(&self) -> &QuerySet {
        self.stepped.query_set()
    }

    /// Shards per-boundary resolution across `jobs` workers; see
    /// [`SteppedSim::with_jobs`]. Output is byte-identical for any value.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.stepped.set_jobs(jobs);
        self
    }

    /// Runs to the end of the query lifetime and aggregates the output.
    pub fn run(mut self) -> MultiUserOutput {
        self.stepped
            .run_to_end()
            .expect("a batch walk never admits or retires, so it cannot fail");
        self.stepped.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_duration_secs(40.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(seed)
    }

    fn run(seed: u64, users: usize, sharing: TreeSharing) -> MultiUserOutput {
        MultiSimulation::new(small_scenario(seed), users, sharing)
            .unwrap()
            .run()
    }

    #[test]
    fn query_set_is_deterministic_and_staggered() {
        let scenario = small_scenario(3);
        let a = QuerySet::generate(&scenario, 8);
        let b = QuerySet::generate(&scenario, 8);
        assert_eq!(a, b);
        assert_eq!(a.users()[0].first_k, 1);
        assert_eq!(a.users()[0].last_k, a.max_k());
        assert!(
            a.users()[1..]
                .iter()
                .any(|u| u.first_k > 1 || u.last_k < a.max_k()),
            "later users should have staggered lifetimes"
        );
        for u in a.users() {
            assert!(u.first_k >= 1 && u.first_k <= u.last_k && u.last_k <= a.max_k());
        }
        for k in 1..=a.max_k() {
            assert!(a.active_users(k) >= 1, "user 0 spans every period");
        }
    }

    #[test]
    fn query_set_generate_survives_tiny_lifetime_windows() {
        // One- and two-period lifetimes exercise the degenerate window draw
        // (span = max(max_k / 4, 1)): every window must stay inside
        // 1..=max_k with first <= last, whatever the stream yields.
        for periods in [1u64, 2, 3] {
            let scenario = small_scenario(11).with_duration_secs(2.0 * periods as f64);
            for seed in 0..20 {
                let set = QuerySet::generate(&scenario.clone().with_seed(seed), 12);
                assert_eq!(set.max_k(), periods);
                for u in set.users() {
                    assert!(
                        u.first_k >= 1 && u.first_k <= u.last_k && u.last_k <= periods,
                        "seed {seed}, {periods} periods: user {} window [{}, {}]",
                        u.user,
                        u.first_k,
                        u.last_k
                    );
                }
                assert_eq!(set.users()[0].first_k, 1);
                assert_eq!(set.users()[0].last_k, periods);
            }
        }
    }

    #[test]
    fn from_users_validates_order_and_windows() {
        let scenario = small_scenario(8);
        let set = QuerySet::generate(&scenario, 3);
        let users = set.users().to_vec();
        let rebuilt = QuerySet::from_users(users.clone(), set.max_k()).unwrap();
        assert_eq!(rebuilt, set);

        let mut shuffled = users.clone();
        shuffled.swap(0, 2);
        assert!(
            QuerySet::from_users(shuffled, set.max_k()).is_err(),
            "fleet order must be identity"
        );
        let mut bad_window = users;
        bad_window[1].last_k = set.max_k() + 1;
        assert!(
            QuerySet::from_users(bad_window, set.max_k()).is_err(),
            "window past max_k refused"
        );
        assert!(QuerySet::from_users(vec![], 5).unwrap().is_empty());
    }

    #[test]
    fn shared_and_naive_runs_are_result_identical_per_user() {
        for seed in [1, 5, 9] {
            let shared = run(seed, 6, TreeSharing::Shared);
            let naive = run(seed, 6, TreeSharing::Naive);
            assert_eq!(shared.logs, naive.logs, "seed {seed}: per-user logs differ");
            assert_eq!(shared.per_user, naive.per_user);
            assert_eq!(shared.installs, naive.installs);
            assert_eq!(
                naive.trees_built, naive.installs,
                "naive builds per install"
            );
            assert!(shared.trees_built <= naive.trees_built);
            assert!(shared.node_wake_seconds <= naive.node_wake_seconds + 1e-9);
            assert_eq!(
                shared.node_wake_seconds_naive, naive.node_wake_seconds_naive,
                "both modes charge the same baseline wake cost"
            );
        }
    }

    #[test]
    fn sharing_kicks_in_with_overlapping_users() {
        // 300 m region, 150 m cells → a 2×2 lattice: 12 users must collide.
        let out = run(2, 12, TreeSharing::Shared);
        assert!(
            out.sharing_ratio() < 1.0,
            "expected tree sharing, got ratio {}",
            out.sharing_ratio()
        );
        assert!(out.shared_hits > 0);
        assert!(out.trees_built < out.installs);
        assert!(out.node_wake_seconds < out.node_wake_seconds_naive);
    }

    #[test]
    fn identical_seeds_give_identical_outputs() {
        let a = run(7, 5, TreeSharing::Shared);
        let b = run(7, 5, TreeSharing::Shared);
        assert_eq!(a, b);
    }

    #[test]
    fn single_user_runs_and_scores_every_period() {
        let out = run(4, 1, TreeSharing::Shared);
        assert_eq!(out.users, 1);
        assert_eq!(out.logs[0].len() as u64, out.installs);
        assert_eq!(out.logs[0].len(), 20, "40 s at 2 s per period");
        assert!(out.mean_fidelity() > 0.0);
        assert!(out.backbone_count > 0);
    }

    #[test]
    fn zero_users_is_rejected() {
        assert!(MultiSimulation::new(small_scenario(1), 0, TreeSharing::Shared).is_err());
    }

    #[test]
    fn per_user_logs_cover_each_users_window() {
        let out = run(6, 6, TreeSharing::Shared);
        let set = QuerySet::generate(&small_scenario(6), 6);
        for (log, user) in out.logs.iter().zip(set.users()) {
            assert_eq!(log.len() as u64, user.query_count());
            assert_eq!(log.records()[0].seq, user.first_k);
            assert_eq!(log.records().last().unwrap().seq, user.last_k);
        }
    }
}
