//! Many-user query multiplexing over one deployment.
//!
//! The paper evaluates one mobile user per trial; the roadmap's target is
//! hundreds of concurrent users served by the same sensor network. This
//! module runs a [`QuerySet`] of `N` users — each with its own trajectory,
//! motion profiles and staggered query lifetime, all derived from the
//! scenario seed through [`wsn_sim::mix_seed`] — over the substrate built by
//! [`super::deploy::Deployment`], and multiplexes their per-period query
//! trees through the reference-counted [`TreeCache`].
//!
//! **Sharing is provably result-identical per user.** Both sharing modes
//! quantise each user's predicted pickup point to a lattice cell of side
//! `Rq` before building a tree, so a shared tree's construction inputs are
//! bit-identical to what the naive one-tree-per-user path would use;
//! [`TreeSharing::Naive`] builds every tree afresh through an independent
//! [`FloodScratch`] (never touching the cache) and serves as the reference
//! implementation, in the style of `elect_backbone_reference`. All random
//! scoring draws come from per-query streams
//! `mix_seed(seed, [QUERY_STREAM, user, k])`, and contention depends only on
//! the (pure) count of concurrently active users — so shared and naive runs
//! produce byte-identical per-user [`QueryLog`]s, which
//! `tree_cache_equivalence` proptests and the `tree_sharing` bench assert.
//!
//! **Temporal sharing across periods works because of event ordering.** All
//! `PeriodInstall` events are seeded upfront and therefore carry lower
//! sequence numbers than the `QueryResolve` events scheduled during the run;
//! at the instant `k·T` the installs for period `k+1` fire before period
//! `k`'s releases, so a user lingering in one lattice cell hands the cell's
//! tree from period to period through the cache without it ever being freed
//! and rebuilt.

use crate::config::Scenario;
use crate::error::ConfigError;
use crate::sim::deploy::Deployment;
use std::collections::HashMap;
use wsn_geom::{Circle, Point, SpatialGrid};
use wsn_metrics::{summarize_users, QueryLog, QueryRecord, UserSummary};
use wsn_mobility::{generate_fleet, MotionProfile, UserMotion};
use wsn_net::{
    Channel, FloodScratch, FloodTree, NeighborTable, NodeId, SleepSchedule, TreeCache, TreeHandle,
    TreeKey,
};
use wsn_power::PowerPlan;
use wsn_sim::{mix_seed, Engine, EventQueue, SimRng, SimTime, World};

/// Stream tag for each user's query-lifetime window draw.
const LIFETIME_STREAM: u64 = 0x11FE_0000_0000_0002;
/// Stream tag for per-query scoring draws (loss, wake jitter).
const QUERY_STREAM: u64 = 0x5EED_0000_0000_0003;

/// Whether overlapping query areas share flood trees through the cache or
/// every query builds its own tree (the reference implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeSharing {
    /// One reference-counted tree per distinct `(collector, cell, radius)`
    /// key, shared by every query that maps to it.
    Shared,
    /// One fresh tree per query install — the one-tree-per-user baseline the
    /// shared path is proven equal to.
    Naive,
}

impl TreeSharing {
    /// Stable lower-case name, used in JSON documents and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            TreeSharing::Shared => "shared",
            TreeSharing::Naive => "naive",
        }
    }
}

/// One user of a multi-user trial: identity, motion, profiles and the
/// staggered window of query periods the user is active in.
#[derive(Debug, Clone, PartialEq)]
pub struct UserQuery {
    /// Fleet index of the user.
    pub user: usize,
    /// The user's derived seed (base for its downstream streams).
    pub seed: u64,
    /// Ground-truth trajectory.
    pub motion: UserMotion,
    /// Motion profiles delivered for this user, sorted by `effective_from`.
    pub profiles: Vec<MotionProfile>,
    /// First query period the user is active in (1-based).
    pub first_k: u64,
    /// Last query period the user is active in (inclusive).
    pub last_k: u64,
}

impl UserQuery {
    /// Returns `true` when the user issues a query in period `k`.
    pub fn active_in(&self, k: u64) -> bool {
        self.first_k <= k && k <= self.last_k
    }

    /// Number of queries the user issues over its lifetime window.
    pub fn query_count(&self) -> u64 {
        self.last_k.saturating_sub(self.first_k) + 1
    }
}

/// The set of concurrent users of one multi-user trial.
///
/// A pure function of `(scenario, users)`: user `u` is derived from
/// `mix_seed(scenario.seed, [FLEET_STREAM, u])` and its lifetime window from
/// `mix_seed(user_seed, [LIFETIME_STREAM])`, so the set is identical across
/// job counts, sharing modes and fleet sizes (prefix-stable in `users`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySet {
    users: Vec<UserQuery>,
    max_k: u64,
}

impl QuerySet {
    /// Generates the fleet and each user's staggered lifetime window.
    ///
    /// User 0 spans the full query lifetime (the single-user convention, and
    /// a guarantee that every period has at least one active user); each
    /// further user draws its window start and end from its own stream,
    /// covering at least half the lifetime.
    pub fn generate(scenario: &Scenario, users: usize) -> Self {
        let max_k = scenario.query.result_count();
        let fleet = generate_fleet(
            &scenario.motion,
            scenario.profile_source,
            users,
            scenario.seed,
        );
        let users = fleet
            .into_iter()
            .map(|member| {
                let (first_k, last_k) = if member.index == 0 {
                    (1, max_k)
                } else {
                    let mut rng = SimRng::seed_from_u64(mix_seed(member.seed, &[LIFETIME_STREAM]));
                    let span = (max_k / 4).max(1) as usize;
                    let mut first = 1 + rng.gen_range_usize(0, span) as u64;
                    let mut last = max_k - rng.gen_range_usize(0, span) as u64;
                    if first > last {
                        std::mem::swap(&mut first, &mut last);
                    }
                    (first.clamp(1, max_k), last.clamp(first, max_k))
                };
                UserQuery {
                    user: member.index,
                    seed: member.seed,
                    motion: member.motion,
                    profiles: member.profiles,
                    first_k,
                    last_k,
                }
            })
            .collect();
        QuerySet { users, max_k }
    }

    /// The users, in fleet order.
    pub fn users(&self) -> &[UserQuery] {
        &self.users
    }

    /// Number of users in the set.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` for an empty set.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The number of query periods of the underlying scenario.
    pub fn max_k(&self) -> u64 {
        self.max_k
    }

    /// Number of users active in period `k` — the contention level every
    /// query of that period is scored under. Pure, so every sharing mode and
    /// job count sees the same concurrency.
    pub fn active_users(&self, k: u64) -> usize {
        self.users.iter().filter(|u| u.active_in(k)).count()
    }

    /// Total number of query installs over the whole trial.
    pub fn total_queries(&self) -> u64 {
        self.users.iter().map(|u| u.query_count()).sum()
    }
}

/// Events of the multi-user event loop.
#[derive(Debug, Clone)]
enum MultiEvent {
    /// Batched per-period install: one pass over every user active in period
    /// `k`, fired one period ahead of the deadline.
    PeriodInstall { k: u64 },
    /// Query `k` of `user` reaches its deadline and is scored.
    QueryResolve { user: u32, k: u64 },
}

/// A query currently standing in the network.
#[derive(Debug, Clone, Copy)]
struct ActiveQuery {
    center: Point,
    installed_at: SimTime,
    /// Cache handle in [`TreeSharing::Shared`] mode, `None` in naive mode
    /// (the tree then lives in `naive_trees`).
    handle: Option<TreeHandle>,
}

/// The multi-user protocol world driven by the discrete-event engine.
#[derive(Debug)]
struct MultiUserWorld {
    scenario: Scenario,
    positions: Vec<Point>,
    neighbors: NeighborTable,
    plan: PowerPlan,
    all_nodes_grid: SpatialGrid,
    backbone_grid: SpatialGrid,
    schedule: SleepSchedule,
    channel: Channel,
    query_set: QuerySet,
    sharing: TreeSharing,
    cache: TreeCache,
    naive_scratch: FloodScratch,
    naive_trees: HashMap<(u32, u64), FloodTree>,
    naive_built: u64,
    active: HashMap<(u32, u64), ActiveQuery>,
    /// Wake-up cost of each distinct tree, memoised by construction key so
    /// both sharing modes charge bit-identical costs.
    tree_cost: HashMap<TreeKey, f64>,
    logs: Vec<QueryLog>,
    installs: u64,
    /// Sleeping-node wake seconds actually paid under the selected mode.
    node_wake_seconds: f64,
    /// Sleeping-node wake seconds the naive one-tree-per-user baseline would
    /// pay for the same installs (equal to `node_wake_seconds` in naive mode).
    node_wake_seconds_naive: f64,
}

impl MultiUserWorld {
    fn deadline(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.scenario.query.period * k
    }

    /// The pickup point for `(user, k)` predicted from the profiles delivered
    /// by `now`: the qualifying profile with the latest `effective_from` not
    /// exceeding the deadline, falling back to ground truth when none has
    /// been delivered yet.
    fn predicted_pickup(user: &UserQuery, now: SimTime, deadline: SimTime) -> Point {
        let mut best = None;
        for profile in &user.profiles {
            if profile.generated_at <= now && profile.effective_from <= deadline {
                best = Some(profile);
            }
        }
        match best {
            Some(profile) => profile.predicted_position(deadline),
            None => user.motion.position_at(deadline),
        }
    }

    /// Snaps a predicted pickup point to the centre of its lattice cell (side
    /// `Rq`), clamped into the region. Queries in the same cell share a
    /// collector and a tree; the naive mode uses the same snapped centre, so
    /// its trees are bit-identical to the shared ones.
    fn quantized_center(&self, p: Point) -> Point {
        let cell = self.scenario.query.radius_m;
        let region = self.scenario.region();
        let snap = |v: f64, lo: f64, hi: f64| {
            (((v - lo) / cell).floor() * cell + lo + cell / 2.0).clamp(lo, hi)
        };
        Point::new(
            snap(p.x, region.min_x, region.max_x),
            snap(p.y, region.min_y, region.max_y),
        )
    }

    fn handle_period_install(&mut self, now: SimTime, k: u64, queue: &mut EventQueue<MultiEvent>) {
        let deadline = self.deadline(k);
        let relay_radius = self.scenario.query.radius_m + self.scenario.radio.comm_range_m;
        for index in 0..self.query_set.users().len() {
            if !self.query_set.users()[index].active_in(k) {
                continue;
            }
            let user = index as u32;
            // Every issued query gets scored, tree or no tree.
            queue.schedule_at(deadline, MultiEvent::QueryResolve { user, k });

            let pickup = {
                let uq = &self.query_set.users()[index];
                Self::predicted_pickup(uq, now, deadline)
            };
            let center = self.quantized_center(pickup);
            let Some(collector) = self.backbone_grid.nearest(center).map(|(i, _)| NodeId(i)) else {
                continue; // no backbone at all: the resolve records a miss
            };
            let key = TreeKey::new(collector, center, relay_radius);
            self.installs += 1;

            let handle = match self.sharing {
                TreeSharing::Shared => {
                    let positions = &self.positions;
                    let plan = &self.plan;
                    let (handle, built) = self.cache.acquire(key, &self.neighbors, |n| {
                        plan.is_backbone(n)
                            && positions[n.index()].distance_to(center) <= relay_radius
                    });
                    let cost = self.memoized_cost(key, None, Some(handle));
                    self.node_wake_seconds_naive += cost;
                    if built {
                        self.node_wake_seconds += cost;
                    }
                    Some(handle)
                }
                TreeSharing::Naive => {
                    let positions = &self.positions;
                    let plan = &self.plan;
                    let tree = self.naive_scratch.build(collector, &self.neighbors, |n| {
                        plan.is_backbone(n)
                            && positions[n.index()].distance_to(center) <= relay_radius
                    });
                    self.naive_built += 1;
                    let cost = self.memoized_cost(key, Some(&tree), None);
                    self.node_wake_seconds_naive += cost;
                    self.node_wake_seconds += cost;
                    self.naive_trees.insert((user, k), tree);
                    None
                }
            };
            self.active.insert(
                (user, k),
                ActiveQuery {
                    center,
                    installed_at: now,
                    handle,
                },
            );
        }
    }

    /// Wake-up cost of the tree for `key`, computed once per distinct key and
    /// then served from the memo (tree content is a pure function of the key,
    /// so the first computation stands for every later install of the key).
    fn memoized_cost(
        &mut self,
        key: TreeKey,
        naive_tree: Option<&FloodTree>,
        handle: Option<TreeHandle>,
    ) -> f64 {
        if let Some(&cost) = self.tree_cost.get(&key) {
            return cost;
        }
        let tree = naive_tree.unwrap_or_else(|| self.cache.tree(handle.expect("shared handle")));
        let setup_airtime = self
            .channel
            .tx_duration(self.scenario.messages.setup_bytes)
            .as_secs_f64();
        let area = Circle::new(key.center(), self.scenario.query.radius_m);
        let comm_range = self.scenario.radio.comm_range_m;
        let mut cost = 0.0;
        for idx in self.all_nodes_grid.query_circle(area) {
            let node = NodeId(idx);
            if self.plan.is_backbone(node) {
                continue;
            }
            let pos = self.positions[idx];
            let has_parent = self
                .all_nodes_grid
                .nearest_filtered(pos, |i| tree.contains(NodeId(i)))
                .map(|(_, parent_pos)| parent_pos.distance_to(pos) <= comm_range)
                .unwrap_or(false);
            if has_parent {
                // One buffered setup reception plus the nominal wake-up the
                // node pays to take and forward its reading.
                cost += setup_airtime + 0.010;
            }
        }
        self.tree_cost.insert(key, cost);
        cost
    }

    fn handle_query_resolve(&mut self, now: SimTime, user: u32, k: u64) {
        let deadline = self.deadline(k);
        let uq = &self.query_set.users()[user as usize];
        let actual = uq.motion.position_at(deadline);
        let area = Circle::new(actual, self.scenario.query.radius_m);
        let mut nodes_in_area: Vec<NodeId> =
            self.all_nodes_grid.query_circle(area).map(NodeId).collect();
        // Sort so every scoring draw below happens in one deterministic order
        // whatever the grid's internal iteration order.
        nodes_in_area.sort_unstable();

        let record = match self.active.remove(&(user, k)) {
            None => QueryRecord::missed(k, deadline, nodes_in_area.len()),
            Some(aq) => {
                let mut rng = SimRng::seed_from_u64(mix_seed(
                    self.scenario.seed,
                    &[QUERY_STREAM, user as u64, k],
                ));
                let concurrency = self.query_set.active_users(k);
                let loss_p = self
                    .scenario
                    .mac
                    .loss_probability(concurrency.saturating_sub(1));
                let tree = match aq.handle {
                    Some(handle) => self.cache.tree(handle),
                    None => &self.naive_trees[&(user, k)],
                };
                let contributing = Self::count_contributing(
                    tree,
                    &nodes_in_area,
                    &aq,
                    deadline,
                    loss_p,
                    &mut rng,
                    &self.positions,
                    &self.all_nodes_grid,
                    &self.plan,
                    &self.schedule,
                    &self.channel,
                    &self.scenario,
                );
                // The query retires: drop this install's tree reference.
                match aq.handle {
                    Some(handle) => {
                        self.cache.release(handle);
                    }
                    None => {
                        let tree = self
                            .naive_trees
                            .remove(&(user, k))
                            .expect("naive tree present until resolve");
                        self.naive_scratch.recycle(tree);
                    }
                }
                QueryRecord {
                    seq: k,
                    deadline,
                    delivered_at: Some(deadline),
                    contributing_nodes: contributing,
                    nodes_in_area: nodes_in_area.len(),
                }
            }
        };
        let _ = now;
        self.logs[user as usize].push(record);
    }

    /// Scores one query against its installed tree. Deterministic given the
    /// tree *content* — both sharing modes build bit-identical trees, iterate
    /// the same sorted node list and draw from the same per-query stream, so
    /// they count the same contributors.
    #[allow(clippy::too_many_arguments)] // split borrows of the world's fields
    fn count_contributing(
        tree: &FloodTree,
        nodes_in_area: &[NodeId],
        aq: &ActiveQuery,
        deadline: SimTime,
        loss_p: f64,
        rng: &mut SimRng,
        positions: &[Point],
        all_nodes_grid: &SpatialGrid,
        plan: &PowerPlan,
        schedule: &SleepSchedule,
        channel: &Channel,
        scenario: &Scenario,
    ) -> usize {
        let period_s = scenario.query.period.as_secs_f64();
        let hop_s = channel
            .tx_duration(scenario.messages.setup_bytes)
            .as_secs_f64()
            + 0.001;
        let comm_range = scenario.radio.comm_range_m;
        let window_s = schedule.active_window().as_secs_f64();
        let mut contributing = 0;
        for &node in nodes_in_area {
            if plan.is_backbone(node) {
                // Backbone: reached by the setup flood if in the tree and the
                // flood's per-hop latency fits the one-period install lead.
                let Some(depth) = tree.depth_of(node) else {
                    continue;
                };
                if depth as f64 * hop_s <= period_s && !rng.gen_bool(loss_p) {
                    contributing += 1;
                }
            } else {
                // Duty-cycled: needs an in-tree relay in range and an active
                // window (plus delivery jitter) before the deadline.
                let pos = positions[node.index()];
                let parent_in_range = all_nodes_grid
                    .nearest_filtered(pos, |i| tree.contains(NodeId(i)))
                    .map(|(_, parent_pos)| parent_pos.distance_to(pos) <= comm_range)
                    .unwrap_or(false);
                if !parent_in_range {
                    continue;
                }
                let wake = schedule.next_awake_instant(aq.installed_at);
                let jitter = rng.gen_range_f64(0.0, window_s * 0.5);
                let delivered = SimTime::from_secs_f64(wake.as_secs_f64() + jitter);
                if delivered <= deadline && !rng.gen_bool(loss_p) {
                    contributing += 1;
                }
            }
        }
        let _ = aq.center;
        contributing
    }
}

impl World for MultiUserWorld {
    type Event = MultiEvent;

    fn handle(&mut self, now: SimTime, event: MultiEvent, queue: &mut EventQueue<MultiEvent>) {
        match event {
            MultiEvent::PeriodInstall { k } => self.handle_period_install(now, k, queue),
            MultiEvent::QueryResolve { user, k } => self.handle_query_resolve(now, user, k),
        }
    }
}

/// Aggregated output of one multi-user run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiUserOutput {
    /// Number of users simulated.
    pub users: usize,
    /// The sharing mode the run used.
    pub sharing: TreeSharing,
    /// Per-user success/fidelity, in fleet order.
    pub per_user: Vec<UserSummary>,
    /// The raw per-user query logs (index = fleet index). The equivalence
    /// suite compares these byte for byte between sharing modes.
    pub logs: Vec<QueryLog>,
    /// Total query installs (= naive trees the baseline would build).
    pub installs: u64,
    /// Trees actually built under the selected mode.
    pub trees_built: u64,
    /// Cache acquisitions served by an existing tree (0 in naive mode).
    pub shared_hits: u64,
    /// Most trees simultaneously live (equals in-flight installs in naive
    /// mode).
    pub peak_live_trees: usize,
    /// Sleeping-node wake seconds paid under the selected mode.
    pub node_wake_seconds: f64,
    /// Sleeping-node wake seconds the naive baseline pays for the same
    /// installs.
    pub node_wake_seconds_naive: f64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Backbone size of the deployment.
    pub backbone_count: usize,
    /// Deployment size.
    pub node_count: usize,
}

impl MultiUserOutput {
    /// Mean per-user success ratio (users that issued no query count as 0).
    pub fn mean_success_ratio(&self) -> f64 {
        if self.per_user.is_empty() {
            return 0.0;
        }
        self.per_user.iter().map(|u| u.success_ratio).sum::<f64>() / self.per_user.len() as f64
    }

    /// Worst per-user success ratio — is *every* user served, not just the
    /// average one?
    pub fn min_success_ratio(&self) -> f64 {
        self.per_user
            .iter()
            .map(|u| u.success_ratio)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Mean per-user fidelity.
    pub fn mean_fidelity(&self) -> f64 {
        if self.per_user.is_empty() {
            return 0.0;
        }
        self.per_user.iter().map(|u| u.mean_fidelity).sum::<f64>() / self.per_user.len() as f64
    }

    /// Trees built over trees the naive baseline builds, in `(0, 1]`:
    /// 1.0 means no sharing happened, small values mean most installs joined
    /// an existing tree.
    pub fn sharing_ratio(&self) -> f64 {
        if self.installs == 0 {
            return 1.0;
        }
        self.trees_built as f64 / self.installs as f64
    }
}

/// A fully constructed multi-user simulation, ready to run.
#[derive(Debug)]
pub struct MultiSimulation {
    engine: Engine<MultiUserWorld>,
    horizon: SimTime,
}

impl MultiSimulation {
    /// Builds the deployment substrate (identical to the single-user
    /// [`super::Simulation`], same RNG forks) and an `users`-strong query
    /// set over it.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the scenario fails validation or
    /// `users` is zero.
    pub fn new(
        scenario: Scenario,
        users: usize,
        sharing: TreeSharing,
    ) -> Result<Self, ConfigError> {
        scenario.validate()?;
        if users == 0 {
            return Err(ConfigError::new("a multi-user run needs at least one user"));
        }
        let mut rng = SimRng::seed_from_u64(scenario.seed);
        let deployment = Deployment::build(&scenario, &mut rng)?;
        let backbone_grid =
            Deployment::backbone_grid(&deployment.positions, &deployment.plan, &scenario);
        let query_set = QuerySet::generate(&scenario, users);
        let schedule = scenario.sleep_schedule();
        let channel = Channel::new(scenario.radio, scenario.mac);
        let horizon = SimTime::from_secs_f64(scenario.query.lifetime.as_secs_f64() + 1.0);
        let max_k = query_set.max_k();
        let period = scenario.query.period;

        let world = MultiUserWorld {
            scenario,
            positions: deployment.positions,
            neighbors: deployment.neighbors,
            plan: deployment.plan,
            all_nodes_grid: deployment.all_nodes_grid,
            backbone_grid,
            schedule,
            channel,
            logs: vec![QueryLog::new(); query_set.len()],
            query_set,
            sharing,
            cache: TreeCache::new(),
            naive_scratch: FloodScratch::new(),
            naive_trees: HashMap::new(),
            naive_built: 0,
            active: HashMap::new(),
            tree_cost: HashMap::new(),
            installs: 0,
            node_wake_seconds: 0.0,
            node_wake_seconds_naive: 0.0,
        };
        let mut engine = Engine::new(world);
        // Install one period ahead of each deadline. Seeding every install
        // upfront gives them lower sequence numbers than any event scheduled
        // during the run, which is what orders period-(k+1) installs before
        // period-k resolves at the shared instant k·T (temporal sharing).
        for k in 1..=max_k {
            let deadline = SimTime::ZERO + period * k;
            engine
                .queue_mut()
                .schedule_at(deadline - period, MultiEvent::PeriodInstall { k });
        }
        Ok(MultiSimulation { engine, horizon })
    }

    /// The query set of this run.
    pub fn query_set(&self) -> &QuerySet {
        &self.engine.world().query_set
    }

    /// Runs to the end of the query lifetime and aggregates the output.
    pub fn run(mut self) -> MultiUserOutput {
        self.engine.run_until(self.horizon);
        let events_processed = self.engine.events_processed();
        let world = self.engine.into_world();
        // Refcount discipline: every install was released at its resolve.
        assert_eq!(
            world.cache.live_trees(),
            0,
            "shared trees leaked past the last query"
        );
        assert!(
            world.active.is_empty() && world.naive_trees.is_empty(),
            "queries left unresolved at the end of the run"
        );
        let trees_built = match world.sharing {
            TreeSharing::Shared => world.cache.trees_built(),
            TreeSharing::Naive => world.naive_built,
        };
        let peak_live_trees = match world.sharing {
            TreeSharing::Shared => world.cache.peak_live_trees(),
            // The naive baseline keeps one tree per in-flight install; its
            // peak equals the largest per-period batch (installs overlap one
            // period at the k·T handover).
            TreeSharing::Naive => (1..=world.query_set.max_k())
                .map(|k| {
                    world.query_set.active_users(k)
                        + world
                            .query_set
                            .active_users(k + 1)
                            .min(if k == world.query_set.max_k() {
                                0
                            } else {
                                usize::MAX
                            })
                })
                .max()
                .unwrap_or(0),
        };
        MultiUserOutput {
            users: world.query_set.len(),
            sharing: world.sharing,
            per_user: summarize_users(&world.logs, world.scenario.fidelity_threshold),
            installs: world.installs,
            trees_built,
            shared_hits: world.cache.shared_hits(),
            peak_live_trees,
            node_wake_seconds: world.node_wake_seconds,
            node_wake_seconds_naive: world.node_wake_seconds_naive,
            events_processed,
            backbone_count: world.plan.backbone_count(),
            node_count: world.positions.len(),
            logs: world.logs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_duration_secs(40.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(seed)
    }

    fn run(seed: u64, users: usize, sharing: TreeSharing) -> MultiUserOutput {
        MultiSimulation::new(small_scenario(seed), users, sharing)
            .unwrap()
            .run()
    }

    #[test]
    fn query_set_is_deterministic_and_staggered() {
        let scenario = small_scenario(3);
        let a = QuerySet::generate(&scenario, 8);
        let b = QuerySet::generate(&scenario, 8);
        assert_eq!(a, b);
        assert_eq!(a.users()[0].first_k, 1);
        assert_eq!(a.users()[0].last_k, a.max_k());
        assert!(
            a.users()[1..]
                .iter()
                .any(|u| u.first_k > 1 || u.last_k < a.max_k()),
            "later users should have staggered lifetimes"
        );
        for u in a.users() {
            assert!(u.first_k >= 1 && u.first_k <= u.last_k && u.last_k <= a.max_k());
        }
        for k in 1..=a.max_k() {
            assert!(a.active_users(k) >= 1, "user 0 spans every period");
        }
    }

    #[test]
    fn shared_and_naive_runs_are_result_identical_per_user() {
        for seed in [1, 5, 9] {
            let shared = run(seed, 6, TreeSharing::Shared);
            let naive = run(seed, 6, TreeSharing::Naive);
            assert_eq!(shared.logs, naive.logs, "seed {seed}: per-user logs differ");
            assert_eq!(shared.per_user, naive.per_user);
            assert_eq!(shared.installs, naive.installs);
            assert_eq!(
                naive.trees_built, naive.installs,
                "naive builds per install"
            );
            assert!(shared.trees_built <= naive.trees_built);
            assert!(shared.node_wake_seconds <= naive.node_wake_seconds + 1e-9);
            assert_eq!(
                shared.node_wake_seconds_naive, naive.node_wake_seconds_naive,
                "both modes charge the same baseline wake cost"
            );
        }
    }

    #[test]
    fn sharing_kicks_in_with_overlapping_users() {
        // 300 m region, 150 m cells → a 2×2 lattice: 12 users must collide.
        let out = run(2, 12, TreeSharing::Shared);
        assert!(
            out.sharing_ratio() < 1.0,
            "expected tree sharing, got ratio {}",
            out.sharing_ratio()
        );
        assert!(out.shared_hits > 0);
        assert!(out.trees_built < out.installs);
        assert!(out.node_wake_seconds < out.node_wake_seconds_naive);
    }

    #[test]
    fn identical_seeds_give_identical_outputs() {
        let a = run(7, 5, TreeSharing::Shared);
        let b = run(7, 5, TreeSharing::Shared);
        assert_eq!(a, b);
    }

    #[test]
    fn single_user_runs_and_scores_every_period() {
        let out = run(4, 1, TreeSharing::Shared);
        assert_eq!(out.users, 1);
        assert_eq!(out.logs[0].len() as u64, out.installs);
        assert_eq!(out.logs[0].len(), 20, "40 s at 2 s per period");
        assert!(out.mean_fidelity() > 0.0);
        assert!(out.backbone_count > 0);
    }

    #[test]
    fn zero_users_is_rejected() {
        assert!(MultiSimulation::new(small_scenario(1), 0, TreeSharing::Shared).is_err());
    }

    #[test]
    fn per_user_logs_cover_each_users_window() {
        let out = run(6, 6, TreeSharing::Shared);
        let set = QuerySet::generate(&small_scenario(6), 6);
        for (log, user) in out.logs.iter().zip(set.users()) {
            assert_eq!(log.len() as u64, user.query_count());
            assert_eq!(log.records()[0].seq, user.first_k);
            assert_eq!(log.records().last().unwrap().seq, user.last_k);
        }
    }
}
