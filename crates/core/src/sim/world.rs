//! The protocol world: all MobiQuery logic reacting to simulation events.
//!
//! The world owns the deployment (node positions, CCP backbone, neighbour
//! table), the shared wireless channel, the ground-truth user motion and the
//! per-query protocol state, and implements the MobiQuery behaviour described
//! in Section 4 of the paper:
//!
//! * the proxy / query gateway launching a prefetch chain whenever a motion
//!   profile arrives,
//! * area-anycast forwarding of the prefetch message between pickup points,
//!   with the just-in-time forwarding bound (Eq. 10) or greedy forwarding,
//! * query-tree setup by bounded flooding over the backbone, with buffered
//!   delivery to duty-cycled nodes during their active windows,
//! * data collection up the tree under the sub-deadline heuristic (Eq. 1),
//! * the No-Prefetching baseline, and
//! * scoring of every query (fidelity / deadline) against the user's *actual*
//!   position, which is what makes imperfect motion prediction cost fidelity.

use crate::collection::CollectionTiming;
use crate::config::{Scenario, Scheme};
use crate::prefetch::PrefetchTiming;
use crate::sim::event::SimEvent;
use crate::sim::state::QueryState;
use std::cell::Cell;
use std::collections::HashMap;
use wsn_geom::{Circle, Point, SpatialGrid};
use wsn_metrics::{QueryLog, QueryRecord};
use wsn_mobility::{MotionProfile, UserMotion};
use wsn_net::routing::{route_greedy, RouteError};
use wsn_net::{Channel, FloodScratch, NeighborTable, NodeId, SleepSchedule};
use wsn_power::PowerPlan;
use wsn_sim::{Duration, EventQueue, SimRng, SimTime, World};

/// Per-node energy bookkeeping for duty-cycled nodes (seconds in each state
/// beyond the baseline duty-cycle pattern), kept as three parallel per-node
/// columns (struct-of-arrays): the event loop touches one node across all
/// columns, but the Figure 8 aggregation scans whole columns, and flat
/// `Vec<f64>`s keep that scan sequential and the memory footprint exact at
/// the 10⁵–10⁶-node scales the churn benchmarks run at.
#[derive(Debug, Clone, Default)]
pub(crate) struct ActivityLedger {
    /// Extra awake time caused by query participation (re-scheduled wake-ups).
    pub extra_awake_s: Vec<f64>,
    /// Time spent transmitting.
    pub tx_s: Vec<f64>,
    /// Time spent receiving query traffic.
    pub rx_s: Vec<f64>,
}

impl ActivityLedger {
    /// A ledger of zeroed columns for `node_count` nodes.
    pub fn with_nodes(node_count: usize) -> Self {
        ActivityLedger {
            extra_awake_s: vec![0.0; node_count],
            tx_s: vec![0.0; node_count],
            rx_s: vec![0.0; node_count],
        }
    }
}

/// The MobiQuery protocol world driven by the discrete-event engine.
#[derive(Debug)]
pub struct SimWorld {
    pub(crate) scenario: Scenario,
    pub(crate) positions: Vec<Point>,
    pub(crate) neighbors: NeighborTable,
    pub(crate) plan: PowerPlan,
    pub(crate) all_nodes_grid: SpatialGrid,
    /// Backbone nodes only, for O(1)-ish nearest-collector lookups (proxy
    /// attach, NP collector selection). Built once: the backbone is static.
    pub(crate) backbone_grid: SpatialGrid,
    /// Reusable flood-tree working state: after a few query periods, tree
    /// construction runs entirely out of recycled buffers.
    pub(crate) flood_scratch: FloodScratch,
    pub(crate) channel: Channel,
    pub(crate) rng: SimRng,
    pub(crate) motion: UserMotion,
    pub(crate) profiles: Vec<MotionProfile>,
    /// Cursor into `profiles` remembering the last profile found to be in
    /// force; profiles arrive sorted by `effective_from`, so pickup
    /// prediction resumes from here instead of rescanning the whole history.
    pickup_cursor: Cell<usize>,
    pub(crate) active_profile: Option<usize>,
    pub(crate) generation: u64,
    pub(crate) queries: HashMap<u64, QueryState>,
    pub(crate) timing: PrefetchTiming,
    pub(crate) collection: CollectionTiming,
    pub(crate) schedule: SleepSchedule,
    pub(crate) max_k: u64,
    pub(crate) log: QueryLog,
    pub(crate) activity: ActivityLedger,
    pub(crate) trees_built: u64,
    pub(crate) prefetch_len_samples: Vec<usize>,
    pub(crate) max_prefetch_len: usize,
    /// Number of buffered-frame deliveries offered to each power-save active
    /// window (keyed by window index). Used by the PSM window-capacity model.
    pub(crate) window_offered: HashMap<u64, u32>,
    /// Recycled `Vec<NodeId>` buffers for the per-message vectors the event
    /// loop used to allocate fresh — prefetch hop paths, data-frame
    /// contribution lists, broadcast fan-out and area scans. Vectors return
    /// here when their message dies, so the steady-state loop reuses warm
    /// capacity instead of hitting the allocator on every send.
    vec_pool: Vec<Vec<NodeId>>,
    /// How many times a pooled vector was handed back out (regression-tested:
    /// a steady-state run must actually recycle, not just pool-and-leak).
    pub(crate) vec_pool_reuses: u64,
}

impl SimWorld {
    /// Small processing gap between consecutive broadcast retries.
    const RETRY_GAP: Duration = Duration::from_millis(6);

    #[allow(clippy::too_many_arguments)] // substrate handles assembled once, in Simulation::new
    pub(crate) fn new(
        scenario: Scenario,
        positions: Vec<Point>,
        neighbors: NeighborTable,
        plan: PowerPlan,
        all_nodes_grid: SpatialGrid,
        channel: Channel,
        rng: SimRng,
        motion: UserMotion,
        profiles: Vec<MotionProfile>,
    ) -> Self {
        let timing = scenario.prefetch_timing();
        let collection = CollectionTiming {
            period: scenario.query.period,
            freshness: scenario.query.freshness,
            query_radius_m: scenario.query.radius_m,
            pickup_radius_m: scenario.pickup_radius_m,
        };
        let schedule = scenario.sleep_schedule();
        let max_k = scenario.query.result_count();
        let node_count = positions.len();
        debug_assert!(
            profiles
                .windows(2)
                .all(|w| w[0].effective_from <= w[1].effective_from),
            "profile sources deliver profiles sorted by effective_from"
        );
        // The backbone never changes after CCP election, so one static grid
        // serves every nearest-backbone lookup for the whole run.
        let mut backbone_grid = SpatialGrid::new(scenario.region(), scenario.radio.comm_range_m)
            .expect("validated scenarios have a positive communication range");
        for node in plan.backbone_nodes() {
            backbone_grid.insert(node.index(), positions[node.index()]);
        }
        SimWorld {
            scenario,
            positions,
            neighbors,
            plan,
            all_nodes_grid,
            backbone_grid,
            flood_scratch: FloodScratch::new(),
            channel,
            rng,
            motion,
            profiles,
            pickup_cursor: Cell::new(0),
            active_profile: None,
            generation: 0,
            queries: HashMap::new(),
            timing,
            collection,
            schedule,
            max_k,
            log: QueryLog::new(),
            activity: ActivityLedger::with_nodes(node_count),
            trees_built: 0,
            prefetch_len_samples: Vec::new(),
            max_prefetch_len: 0,
            window_offered: HashMap::new(),
            vec_pool: Vec::new(),
            vec_pool_reuses: 0,
        }
    }

    /// Hands out a cleared buffer from the pool (or a fresh one the first few
    /// times, until the pool warms up).
    fn take_vec(&mut self) -> Vec<NodeId> {
        match self.vec_pool.pop() {
            Some(mut v) => {
                v.clear();
                self.vec_pool_reuses += 1;
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a dead message's buffer to the pool. Zero-capacity vectors are
    /// dropped: pooling them would recycle nothing.
    fn recycle_vec(&mut self, v: Vec<NodeId>) {
        if v.capacity() > 0 {
            self.vec_pool.push(v);
        }
    }

    /// Index of the power-save active window containing (or starting at) `t`.
    fn window_index(&self, t: SimTime) -> u64 {
        t.as_micros() / self.schedule.period().as_micros().max(1)
    }

    /// Registers one buffered-frame delivery attempt offered to the window
    /// containing `t` and returns the resulting offered count.
    fn offer_to_window(&mut self, t: SimTime) -> u32 {
        let idx = self.window_index(t);
        let entry = self.window_offered.entry(idx).or_insert(0);
        *entry += 1;
        *entry
    }

    /// The probability that a buffered-frame delivery fails purely because its
    /// active window is oversubscribed (the 802.11 PSM bottleneck): zero while
    /// the offered load fits the window capacity, approaching one as the
    /// backlog grows far beyond it.
    fn window_overload_loss(&self, now: SimTime) -> f64 {
        let offered = self
            .window_offered
            .get(&self.window_index(now))
            .copied()
            .unwrap_or(0);
        let capacity = self.scenario.psm_window_capacity.max(1);
        if offered <= capacity {
            0.0
        } else {
            1.0 - capacity as f64 / offered as f64
        }
    }

    fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// The backbone node closest to `p`, if any backbone exists.
    ///
    /// Served by the backbone-only spatial grid: an expanding-ring search
    /// instead of a scan over every backbone node, with the same result —
    /// the grid's tie-break (smallest squared distance, then smallest id)
    /// matches the first-wins `min_by` over the id-ordered backbone iterator
    /// that this replaced.
    fn nearest_backbone(&self, p: Point) -> Option<NodeId> {
        self.backbone_grid
            .nearest(p)
            .map(|(index, _)| NodeId(index))
    }

    /// The pickup point for query `k` as predicted by the motion profiles
    /// delivered so far.
    ///
    /// Among the delivered profiles, the one whose effective time is the
    /// latest not exceeding the query deadline is used; a profile delivered
    /// early (positive advance time) therefore does not override the profile
    /// describing the *current* leg until it actually takes effect.
    fn predicted_pickup(&self, k: u64) -> Point {
        let deadline = self.collection.deadline(k);
        match self.active_profile {
            Some(last) => {
                let idx = self.profile_in_force(last, deadline);
                self.profiles[idx].predicted_position(deadline)
            }
            None => self.motion.position_at(deadline),
        }
    }

    /// Index of the delivered profile in force at `deadline`: among indices
    /// `0..=last`, the one with the latest `effective_from` not exceeding the
    /// deadline (ties resolve to the highest index), or `last` when none
    /// qualifies yet.
    ///
    /// Profiles are delivered sorted by `effective_from` (asserted in
    /// [`SimWorld::new`]), so instead of rescanning the whole history on
    /// every call a cursor resumes from the previously found profile and
    /// walks at most a few entries in either direction — amortised O(1) over
    /// a run's monotone-ish deadline sequence.
    fn profile_in_force(&self, last: usize, deadline: SimTime) -> usize {
        let mut c = self.pickup_cursor.get().min(last);
        while c < last && self.profiles[c + 1].effective_from <= deadline {
            c += 1;
        }
        while c > 0 && self.profiles[c].effective_from > deadline {
            c -= 1;
        }
        self.pickup_cursor.set(c);
        if self.profiles[c].effective_from <= deadline {
            c
        } else {
            last
        }
    }

    fn deadline(&self, k: u64) -> SimTime {
        self.collection.deadline(k)
    }

    fn earliest_reading(&self, k: u64) -> SimTime {
        self.collection.leaf_reading_time(k)
    }

    /// Charges radio activity to a duty-cycled node (backbone nodes are
    /// always on and their power is not part of the Figure 8 metric).
    fn charge(&mut self, node: NodeId, extra_awake_s: f64, tx_s: f64, rx_s: f64) {
        if !self.plan.is_backbone(node) {
            let i = node.index();
            self.activity.extra_awake_s[i] += extra_awake_s;
            self.activity.tx_s[i] += tx_s;
            self.activity.rx_s[i] += rx_s;
        }
    }

    // ------------------------------------------------------------------
    // Profile handling and prefetch chain
    // ------------------------------------------------------------------

    fn handle_profile_delivered(
        &mut self,
        now: SimTime,
        index: usize,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if self.scenario.scheme == Scheme::None {
            return; // the NP baseline ignores motion profiles entirely
        }
        self.active_profile = Some(index);
        self.generation += 1;
        let generation = self.generation;

        // The proxy attaches to the nearest backbone node and injects the
        // prefetch message for the next pending query.
        let user_pos = self.motion.position_at(now);
        let Some(attach) = self.nearest_backbone(user_pos) else {
            return;
        };
        let period = self.timing.period.as_secs_f64();
        let k_start = ((now.as_secs_f64() / period).floor() as u64 + 1).min(self.max_k);
        if self.deadline(k_start) < now {
            return;
        }
        let send_at = self.timing.send_time(self.scenario.scheme, k_start, now);
        queue.schedule_at(
            send_at,
            SimEvent::PrefetchForward {
                generation,
                k: k_start,
                from: attach,
            },
        );
    }

    fn handle_prefetch_forward(
        &mut self,
        now: SimTime,
        generation: u64,
        k: u64,
        from: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if generation != self.generation || k > self.max_k {
            return; // cancelled by a newer motion profile
        }
        if now >= self.deadline(k) {
            // Too late for this pickup point; keep the chain alive.
            self.schedule_next_forward(now, generation, k, from, queue);
            return;
        }
        let target = self.predicted_pickup(k);
        let route = match route_greedy(
            from,
            target,
            self.scenario.pickup_radius_m,
            &self.positions,
            &self.neighbors,
            |n| self.plan.is_backbone(n),
        ) {
            Ok(path) => path.hops,
            Err(RouteError::Void { stuck_at, .. }) => {
                // Greedy forwarding got stuck (a routing void): the closest
                // reachable backbone node acts as the collector. The two-hop
                // path comes from the recycled pool, not a fresh allocation.
                let mut hops = self.take_vec();
                hops.push(from);
                if stuck_at != from {
                    hops.push(stuck_at);
                }
                hops
            }
            Err(RouteError::UnknownSource(_)) => return,
        };
        queue.schedule_at(
            now,
            SimEvent::PrefetchHop {
                generation,
                k,
                route,
                index: 0,
                attempt: 0,
            },
        );
    }

    #[allow(clippy::too_many_arguments)] // mirrors the fields of SimEvent::PrefetchHop
    fn handle_prefetch_hop(
        &mut self,
        now: SimTime,
        generation: u64,
        k: u64,
        route: Vec<NodeId>,
        index: usize,
        attempt: u32,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if generation != self.generation {
            // Cancel message: stop relaying along the abandoned path.
            self.recycle_vec(route);
            return;
        }
        if index + 1 >= route.len() {
            let arrived_at = route[index];
            self.recycle_vec(route);
            self.prefetch_arrived(now, generation, k, arrived_at, queue);
            return;
        }
        let sender = route[index];
        let outcome = self.channel.transmit(
            sender,
            self.position(sender),
            self.scenario.messages.prefetch_bytes,
            now,
            &mut self.rng,
        );
        if outcome.delivered || attempt >= self.scenario.max_retries {
            // After exhausting retries the hop is forced through: the prefetch
            // message is small, and a real deployment would keep retrying; the
            // contention cost of every attempt has already been charged.
            queue.schedule_at(
                now + outcome.delay,
                SimEvent::PrefetchHop {
                    generation,
                    k,
                    route,
                    index: index + 1,
                    attempt: 0,
                },
            );
        } else {
            queue.schedule_at(
                now + outcome.delay + Self::RETRY_GAP,
                SimEvent::PrefetchHop {
                    generation,
                    k,
                    route,
                    index,
                    attempt: attempt + 1,
                },
            );
        }
    }

    fn schedule_next_forward(
        &mut self,
        now: SimTime,
        generation: u64,
        k: u64,
        from: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let next_k = k + 1;
        if next_k > self.max_k {
            return;
        }
        let send_at = self.timing.send_time(self.scenario.scheme, next_k, now);
        queue.schedule_at(
            send_at,
            SimEvent::PrefetchForward {
                generation,
                k: next_k,
                from,
            },
        );
    }

    fn prefetch_arrived(
        &mut self,
        now: SimTime,
        generation: u64,
        k: u64,
        collector: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        // The collector relays the prefetch message onward regardless of
        // whether this particular query area still needs to be (re)built.
        self.schedule_next_forward(now, generation, k, collector, queue);

        if let Some(existing) = self.queries.get(&k) {
            if existing.generation >= generation {
                return;
            }
        }
        self.install_query(
            now,
            generation,
            k,
            collector,
            self.predicted_pickup(k),
            queue,
        );
    }

    /// Installs the query state for query `k` rooted at `collector` and starts
    /// query dissemination. Shared by the prefetching schemes and the NP
    /// baseline.
    fn install_query(
        &mut self,
        now: SimTime,
        generation: u64,
        k: u64,
        collector: NodeId,
        pickup: Point,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if now >= self.deadline(k) {
            return;
        }
        let area = Circle::new(pickup, self.scenario.query.radius_m);
        // The tree spans backbone nodes within one communication range beyond
        // the query area so that duty-cycled nodes at the area's edge still
        // find an in-tree relay. Built out of the recycled scratch buffers,
        // so steady-state tree construction allocates nothing.
        let relay_radius = self.scenario.query.radius_m + self.scenario.radio.comm_range_m;
        let positions = &self.positions;
        let plan = &self.plan;
        let tree = self.flood_scratch.build(collector, &self.neighbors, |n| {
            plan.is_backbone(n) && positions[n.index()].distance_to(pickup) <= relay_radius
        });

        let mut state = QueryState::new(k, generation, pickup, collector, now, tree);
        state.setup_arrival.insert(collector, now);
        state.setup_started = true;

        // Assign every duty-cycled node in the (predicted) area a parent from
        // the tree, if one is within communication range. The candidate walk
        // is an expanding-ring grid search filtered by the scratch's dense
        // in-tree marks (valid until the next tree build) instead of a scan
        // over the whole tree per sleeping node: the nearest in-tree node is
        // the would-be parent, and if even that one is out of range, no
        // in-tree node is. (Exact distance ties now resolve to the smallest
        // id rather than the BFS-earlier tree node — distinguishable only
        // for coincident/symmetric positions, which random deployments never
        // produce.)
        let comm_range = self.scenario.radio.comm_range_m;
        let mut sleeping_in_area = self.take_vec();
        sleeping_in_area.extend(
            self.all_nodes_grid
                .query_circle(area)
                .map(NodeId)
                .filter(|&n| !self.plan.is_backbone(n)),
        );
        let scratch = &self.flood_scratch;
        for &node in &sleeping_in_area {
            let pos = self.position(node);
            let parent = self
                .all_nodes_grid
                .nearest_filtered(pos, |index| scratch.in_last_tree(index))
                .filter(|&(_, parent_pos)| parent_pos.distance_to(pos) <= comm_range)
                .map(|(index, _)| NodeId(index));
            if let Some(parent) = parent {
                state.sleeping_parent.insert(node, parent);
            }
        }
        self.recycle_vec(sleeping_in_area);

        self.trees_built += 1;
        if let Some(stale) = self.queries.insert(k, state) {
            // A newer generation replaced this query's tree; reuse its
            // buffers for the next build.
            self.flood_scratch.recycle(stale.tree);
        }

        // The collector starts flooding the setup message immediately, and its
        // duty-cycled neighbours can be served from its own buffered copy.
        queue.schedule_at(
            now,
            SimEvent::SetupBroadcast {
                k,
                node: collector,
                attempt: 0,
            },
        );
        self.schedule_sleeping_deliveries(now, k, collector, queue);
    }

    // ------------------------------------------------------------------
    // Query dissemination
    // ------------------------------------------------------------------

    fn handle_setup_broadcast(
        &mut self,
        now: SimTime,
        k: u64,
        node: NodeId,
        attempt: u32,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if !self.queries.contains_key(&k) || now >= self.deadline(k) {
            return;
        }
        let mut pending = self.take_vec();
        let state = self.queries.get(&k).expect("checked above");
        pending.extend(
            state
                .tree
                .children_of(node)
                .iter()
                .copied()
                .filter(|child| !state.has_setup(*child)),
        );
        if pending.is_empty() {
            self.recycle_vec(pending);
            return;
        }
        let outcome = self.channel.transmit(
            node,
            self.position(node),
            self.scenario.messages.setup_bytes,
            now,
            &mut self.rng,
        );
        let loss_p = self.scenario.mac.loss_probability(outcome.contenders);
        let mut any_missed = false;
        for &child in &pending {
            if self.rng.gen_bool(loss_p) {
                any_missed = true;
            } else {
                queue.schedule_at(
                    now + outcome.delay,
                    SimEvent::SetupArrive { k, node: child },
                );
            }
        }
        self.recycle_vec(pending);
        if any_missed && attempt < self.scenario.max_retries {
            queue.schedule_at(
                now + outcome.delay + Self::RETRY_GAP,
                SimEvent::SetupBroadcast {
                    k,
                    node,
                    attempt: attempt + 1,
                },
            );
        }
    }

    fn handle_setup_arrive(
        &mut self,
        now: SimTime,
        k: u64,
        node: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let deadline = self.deadline(k);
        let Some(state) = self.queries.get_mut(&k) else {
            return;
        };
        if state.has_setup(node) || now >= deadline {
            return;
        }
        state.setup_arrival.insert(node, now);
        let collector_pos = self.positions[state.collector.index()];
        let du = self
            .collection
            .sub_deadline(k, self.positions[node.index()].distance_to(collector_pos));
        let is_collector = node == state.collector;
        // Relay the flood onward and arm this node's aggregation timeout.
        queue.schedule_at(
            now + Duration::from_millis(1),
            SimEvent::SetupBroadcast {
                k,
                node,
                attempt: 0,
            },
        );
        if !is_collector {
            queue.schedule_at(du.max(now), SimEvent::AggregateSend { k, node });
        }
        self.schedule_sleeping_deliveries(now, k, node, queue);
    }

    /// Schedules buffered-setup delivery attempts for every duty-cycled node
    /// whose assigned parent is `parent` and which is not yet set up.
    fn schedule_sleeping_deliveries(
        &mut self,
        now: SimTime,
        k: u64,
        parent: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if !self.queries.contains_key(&k) {
            return;
        }
        let mut targets = self.take_vec();
        let state = self.queries.get(&k).expect("checked above");
        targets.extend(
            state
                .sleeping_parent
                .iter()
                .filter(|(node, p)| **p == parent && !state.sleeping_ready.contains_key(node))
                .map(|(node, _)| *node),
        );
        if targets.is_empty() {
            self.recycle_vec(targets);
            return;
        }
        // Hash-map iteration order is unspecified; sort so that the RNG draws
        // below happen in a deterministic order and runs are reproducible.
        targets.sort_unstable();
        let window = self.schedule.active_window().as_secs_f64();
        for &node in &targets {
            // PSM buffering: the frame can only be handed over while the
            // duty-cycled node is awake, i.e. during an active window. The
            // attempt is jittered inside the window so that concurrent
            // deliveries (the contention greedy prefetching suffers from)
            // spread over the window rather than colliding at its first slot.
            let window_start = self.schedule.next_awake_instant(now);
            let jitter = Duration::from_secs_f64(self.rng.gen_range_f64(0.0, window * 0.5));
            let at = window_start + jitter;
            self.offer_to_window(at);
            queue.schedule_at(
                at,
                SimEvent::SleepingDeliver {
                    k,
                    node,
                    attempt: 0,
                },
            );
        }
        self.recycle_vec(targets);
    }

    fn handle_sleeping_deliver(
        &mut self,
        now: SimTime,
        k: u64,
        node: NodeId,
        attempt: u32,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let deadline = self.deadline(k);
        let earliest_reading = self.earliest_reading(k);
        let Some(state) = self.queries.get(&k) else {
            return;
        };
        if state.sleeping_ready.contains_key(&node) || now >= deadline {
            return;
        }
        let Some(&parent) = state.sleeping_parent.get(&node) else {
            return;
        };
        let setup_bytes = self.scenario.messages.setup_bytes;
        let outcome = self.channel.transmit(
            parent,
            self.position(parent),
            setup_bytes,
            now,
            &mut self.rng,
        );
        // A buffered frame fails either through ordinary contention loss or
        // because its active window is oversubscribed (the PSM bottleneck
        // that greedy prefetching's concentrated setup runs into).
        let contention_loss = self.scenario.mac.loss_probability(outcome.contenders);
        let overload_loss = self.window_overload_loss(now);
        let loss_p = 1.0 - (1.0 - contention_loss) * (1.0 - overload_loss);
        let lost = self.rng.gen_bool(loss_p);
        let arrival = now + outcome.delay;
        if !lost {
            let airtime = self.channel.tx_duration(setup_bytes).as_secs_f64();
            self.charge(node, 0.0, 0.0, airtime);
            // The node re-schedules its wake-up for the earliest instant a
            // fresh reading can be taken (Section 4.3), or reads immediately
            // if it is already past that instant. The actual channel access is
            // staggered within the slack its parent's sub-deadline (Eq. 1)
            // leaves, so the simultaneous wake-up of every leaf in the area
            // does not collapse into a single collision burst.
            let reading_time = earliest_reading.max(arrival);
            let collector_pos = {
                let state = self.queries.get(&k).expect("state present");
                self.positions[state.collector.index()]
            };
            let parent_du = self
                .collection
                .sub_deadline(k, self.position(parent).distance_to(collector_pos));
            let slack = parent_du
                .saturating_since(reading_time)
                .as_secs_f64()
                .max(0.0);
            let jitter = Duration::from_secs_f64(
                self.rng.gen_range_f64(0.0, (slack * 0.5).clamp(1e-4, 0.25)),
            );
            let state = self.queries.get_mut(&k).expect("state present");
            state.sleeping_ready.insert(node, arrival);
            let send_time = reading_time + jitter;
            if send_time < deadline {
                queue.schedule_at(send_time, SimEvent::LeafSend { k, node });
            }
            return;
        }
        // Retry while the node is still awake in this window, otherwise defer
        // the buffered frame to the next active window. Give up once the
        // reading deadline can no longer be met.
        let retry_at = arrival + Self::RETRY_GAP;
        let (next_attempt_at, new_window) = match self.schedule.active_window_end(now) {
            Some(end) if retry_at < end => (retry_at, false),
            _ => {
                let next_window = self.schedule.next_wake(arrival);
                let window = self.schedule.active_window().as_secs_f64();
                let jitter = Duration::from_secs_f64(self.rng.gen_range_f64(0.0, window * 0.5));
                (next_window + jitter, true)
            }
        };
        if next_attempt_at < deadline {
            if new_window {
                self.offer_to_window(next_attempt_at);
            }
            queue.schedule_at(
                next_attempt_at,
                SimEvent::SleepingDeliver {
                    k,
                    node,
                    attempt: attempt + 1,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Data collection
    // ------------------------------------------------------------------

    fn handle_leaf_send(
        &mut self,
        now: SimTime,
        k: u64,
        node: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let Some(state) = self.queries.get(&k) else {
            return;
        };
        let Some(&parent) = state.sleeping_parent.get(&node) else {
            return;
        };
        if now >= self.deadline(k) {
            return;
        }
        // The leaf stays awake from its wake-up until the transmission ends,
        // then goes straight back to sleep (it is deliberately a leaf so this
        // is all the extra awake time it pays). A nominal 10 ms covers the
        // sensor reading plus the expected channel-access time; the
        // transmission itself is charged inside `send_data`.
        self.charge(node, 0.010, 0.0, 0.0);
        let mut contributions = self.take_vec();
        contributions.push(node);
        self.send_data(now, k, node, parent, contributions, 0, queue);
    }

    /// Transmits a data frame from `from` to `to` with link-layer
    /// retransmission (802.11-style unicast ARQ): on loss the frame is
    /// retried after a short gap, up to the configured retry budget, as long
    /// as the query deadline has not passed.
    #[allow(clippy::too_many_arguments)] // mirrors the fields of SimEvent::DataSend
    fn send_data(
        &mut self,
        now: SimTime,
        k: u64,
        from: NodeId,
        to: NodeId,
        contributions: Vec<NodeId>,
        attempt: u32,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let deadline = self.deadline(k);
        if now >= deadline || contributions.is_empty() {
            self.recycle_vec(contributions);
            return;
        }
        let data_bytes = self.scenario.messages.data_bytes;
        let outcome =
            self.channel
                .transmit(from, self.position(from), data_bytes, now, &mut self.rng);
        let airtime = self.channel.tx_duration(data_bytes).as_secs_f64();
        self.charge(from, outcome.delay.as_secs_f64(), airtime, 0.0);
        if outcome.delivered {
            queue.schedule_at(
                now + outcome.delay,
                SimEvent::DataArrive {
                    k,
                    node: to,
                    contributions,
                },
            );
        } else if attempt < self.scenario.max_retries {
            queue.schedule_at(
                now + outcome.delay + Self::RETRY_GAP,
                SimEvent::DataSend {
                    k,
                    from,
                    to,
                    contributions,
                    attempt: attempt + 1,
                },
            );
        }
        // After the retry budget is exhausted the frame (and the whole
        // subtree's contributions it carries) is lost — the congestion cost
        // the paper attributes to greedy prefetching.
    }

    fn handle_data_arrive(
        &mut self,
        now: SimTime,
        k: u64,
        node: NodeId,
        contributions: Vec<NodeId>,
    ) {
        let deadline = self.deadline(k);
        if let Some(state) = self.queries.get_mut(&k) {
            if node == state.collector {
                if now <= deadline {
                    state
                        .collector_received
                        .extend(contributions.iter().copied());
                }
            } else if !state.sent.contains(&node) {
                state.accumulate(node, contributions.iter().copied());
            }
            // Contributions arriving at an interior node after it already
            // forwarded its aggregate are lost — exactly the cost of the
            // timeout scheme the paper describes.
        }
        self.recycle_vec(contributions);
    }

    fn handle_aggregate_send(
        &mut self,
        now: SimTime,
        k: u64,
        node: NodeId,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let deadline = self.deadline(k);
        let earliest_reading = self.earliest_reading(k);
        let Some(state) = self.queries.get_mut(&k) else {
            return;
        };
        if state.sent.contains(&node) || now > deadline {
            return;
        }
        state.sent.insert(node);
        let mut set = state.take_accumulated(node);
        // The node's own reading: available once both its setup arrived and
        // the freshness window opened.
        if let Some(&setup_at) = state.setup_arrival.get(&node) {
            if earliest_reading.max(setup_at) <= now {
                set.insert(node);
            }
        }
        if set.is_empty() {
            return;
        }
        let parent = state.tree.parent_of(node);
        let collector = state.collector;
        let mut contributions = self.take_vec();
        contributions.extend(set.iter().copied());
        contributions.sort_unstable();
        match parent {
            None => {
                // This is the collector (or an orphan): deliver locally.
                if node == collector && now <= deadline {
                    let state = self.queries.get_mut(&k).expect("state present");
                    state
                        .collector_received
                        .extend(contributions.iter().copied());
                }
                self.recycle_vec(contributions);
            }
            Some(parent) => self.send_data(now, k, node, parent, contributions, 0, queue),
        }
    }

    // ------------------------------------------------------------------
    // Scoring and the NP baseline
    // ------------------------------------------------------------------

    fn handle_query_deadline(&mut self, now: SimTime, k: u64) {
        let deadline = self.deadline(k);
        let actual_user = self.motion.position_at(deadline);
        let area = Circle::new(actual_user, self.scenario.query.radius_m);
        let mut nodes_in_area = self.take_vec();
        nodes_in_area.extend(self.all_nodes_grid.query_circle(area).map(NodeId));

        // Sample the prefetch length (trees standing for future queries).
        let ahead = self.queries.keys().filter(|&&j| j > k).count();
        self.prefetch_len_samples.push(ahead);
        self.max_prefetch_len = self.max_prefetch_len.max(ahead);

        let record = match self.queries.remove(&k) {
            None => QueryRecord::missed(k, deadline, nodes_in_area.len()),
            Some(mut state) => {
                // The collector adds its own fresh reading as it hands the
                // result to the user.
                if let Some(&setup_at) = state.setup_arrival.get(&state.collector) {
                    if self.earliest_reading(k).max(setup_at) <= now {
                        state.collector_received.insert(state.collector);
                    }
                }
                let contributing = nodes_in_area
                    .iter()
                    .filter(|n| state.collector_received.contains(n))
                    .count();
                let record = QueryRecord {
                    seq: k,
                    deadline,
                    delivered_at: Some(deadline),
                    contributing_nodes: contributing,
                    nodes_in_area: nodes_in_area.len(),
                };
                // The query is scored and gone; its tree's buffers feed the
                // next build.
                self.flood_scratch.recycle(state.tree);
                record
            }
        };
        self.recycle_vec(nodes_in_area);
        self.log.push(record);
    }

    fn handle_np_launch(&mut self, now: SimTime, k: u64, queue: &mut EventQueue<SimEvent>) {
        // The user broadcasts the query into the network at the start of the
        // period; the nearest backbone node acts as the collector for the
        // area around the user's position *at broadcast time*.
        let user_pos = self.motion.position_at(now);
        let Some(collector) = self.nearest_backbone(user_pos) else {
            return;
        };
        self.install_query(now, 0, k, collector, user_pos, queue);
    }
}

impl World for SimWorld {
    type Event = SimEvent;

    fn handle(&mut self, now: SimTime, event: SimEvent, queue: &mut EventQueue<SimEvent>) {
        match event {
            SimEvent::ProfileDelivered(index) => self.handle_profile_delivered(now, index, queue),
            SimEvent::PrefetchForward {
                generation,
                k,
                from,
            } => self.handle_prefetch_forward(now, generation, k, from, queue),
            SimEvent::PrefetchHop {
                generation,
                k,
                route,
                index,
                attempt,
            } => self.handle_prefetch_hop(now, generation, k, route, index, attempt, queue),
            SimEvent::SetupBroadcast { k, node, attempt } => {
                self.handle_setup_broadcast(now, k, node, attempt, queue)
            }
            SimEvent::SetupArrive { k, node } => self.handle_setup_arrive(now, k, node, queue),
            SimEvent::SleepingDeliver { k, node, attempt } => {
                self.handle_sleeping_deliver(now, k, node, attempt, queue)
            }
            SimEvent::LeafSend { k, node } => self.handle_leaf_send(now, k, node, queue),
            SimEvent::DataSend {
                k,
                from,
                to,
                contributions,
                attempt,
            } => self.send_data(now, k, from, to, contributions, attempt, queue),
            SimEvent::DataArrive {
                k,
                node,
                contributions,
            } => self.handle_data_arrive(now, k, node, contributions),
            SimEvent::AggregateSend { k, node } => self.handle_aggregate_send(now, k, node, queue),
            SimEvent::QueryDeadline { k } => self.handle_query_deadline(now, k),
            SimEvent::NpLaunch { k } => self.handle_np_launch(now, k, queue),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Scenario, Scheme};
    use crate::sim::Simulation;
    use wsn_sim::SimTime;

    #[test]
    fn hot_path_vectors_are_recycled() {
        // A steady-state run must actually reuse pooled buffers for its hop
        // paths and contribution lists — pool-and-never-take would silently
        // reintroduce the per-message allocations this pool removes.
        let scenario = Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_scheme(Scheme::JustInTime)
            .with_seed(11)
            .with_duration_secs(40.0);
        let mut sim = Simulation::new(scenario).unwrap();
        sim.engine.run_until(SimTime::MAX);
        let world = sim.engine.world();
        assert!(
            world.vec_pool_reuses > 100,
            "expected the hot loop to recycle buffers, saw {} reuses",
            world.vec_pool_reuses
        );
    }
}
