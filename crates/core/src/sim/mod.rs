//! The MobiQuery protocol simulation.
//!
//! [`Simulation`] builds a complete scenario — random node deployment, CCP
//! backbone election, neighbour tables, the shared wireless channel, the
//! user's ground-truth motion and the motion-profile stream — seeds the
//! event queue with query deadlines and profile deliveries, runs the
//! discrete-event engine to the end of the query lifetime and distils a
//! [`SimulationOutput`] with the paper's metrics (success ratio, per-period
//! fidelity, per-sleeping-node power, prefetch length, channel loss).
//!
//! Every run is a pure function of its [`Scenario`] (including the seed), so
//! figures are reproducible bit for bit.

mod churn;
mod deploy;
mod event;
mod multi;
mod output;
mod state;
mod stepped;
mod store;
mod world;

pub use churn::{ChurnBatchPlan, ChurnConfig};
pub use event::SimEvent;
pub use multi::{MultiSimulation, MultiUserOutput, QuerySet, TreeSharing, UserQuery};
pub use output::SimulationOutput;
pub use state::QueryState;
pub use stepped::SteppedSim;
pub use store::{priority_for, NodeStore};
pub use world::SimWorld;
pub use wsn_net::{Blackout, FaultConfig, FaultError, FaultPlan};

use crate::config::{Scenario, Scheme};
use crate::error::ConfigError;
use deploy::Deployment;
use std::time::Instant;
use wsn_net::{Channel, NodeId, RadioState, SleepSchedule};
use wsn_power::EnergyLedger;
use wsn_sim::{Duration, Engine, SimRng, SimTime};

/// Wall-clock breakdown of the setup phases of [`Simulation::new`], in
/// milliseconds.
///
/// Deployment setup used to dwarf the event loop at scale (~50× at 20 000
/// nodes before the coverage raster), so the scale benchmarks record where
/// setup time actually goes instead of a single opaque `setup_ms`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SetupBreakdown {
    /// Node placement, the all-nodes spatial grid, and the backbone
    /// neighbour table (the table is built just after the election, since it
    /// only needs backbone adjacency, but its cost is accounted here).
    pub neighbor_ms: f64,
    /// CCP backbone election: the coverage-raster build and the greedy
    /// demotion pass.
    pub ccp_ms: f64,
    /// Everything downstream of the election: power-plan packaging, mobility
    /// and motion-profile generation, channel and world assembly, and event
    /// seeding.
    pub plan_ms: f64,
}

impl SetupBreakdown {
    /// Total setup wall-clock across all phases.
    pub fn total_ms(&self) -> f64 {
        self.neighbor_ms + self.ccp_ms + self.plan_ms
    }
}

/// A fully constructed simulation, ready to run.
#[derive(Debug)]
pub struct Simulation {
    engine: Engine<SimWorld>,
    scenario: Scenario,
    setup: SetupBreakdown,
}

impl Simulation {
    /// Builds the deployment and protocol state for `scenario`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the scenario fails validation.
    pub fn new(scenario: Scenario) -> Result<Self, ConfigError> {
        scenario.validate()?;
        let mut rng = SimRng::seed_from_u64(scenario.seed);
        let ms_since = |start: Instant| start.elapsed().as_secs_f64() * 1e3;

        // --- Deployment substrate (shared with the multi-user path) ------
        let Deployment {
            positions,
            all_nodes_grid,
            neighbors,
            plan,
            neighbor_ms,
            ccp_ms,
        } = Deployment::build(&scenario, &mut rng)?;
        let phase_start = Instant::now();

        // --- Mobility and motion profiles --------------------------------
        let mut motion_rng = rng.fork(3);
        let motion = wsn_mobility::UserMotion::generate(&scenario.motion, &mut motion_rng);
        let mut profile_rng = rng.fork(4);
        let profiles = scenario.profile_source.profiles(&motion, &mut profile_rng);

        // --- Channel and world --------------------------------------------
        let channel = Channel::new(scenario.radio, scenario.mac);
        let world_rng = rng.fork(5);
        let world = SimWorld::new(
            scenario.clone(),
            positions,
            neighbors,
            plan,
            all_nodes_grid,
            channel,
            world_rng,
            motion,
            profiles,
        );

        let mut engine = Engine::new(world);
        Self::seed_events(&mut engine, &scenario);
        let setup = SetupBreakdown {
            neighbor_ms,
            ccp_ms,
            plan_ms: ms_since(phase_start),
        };
        Ok(Simulation {
            engine,
            scenario,
            setup,
        })
    }

    /// Seeds the initial events: one deadline per query, profile deliveries
    /// for the prefetching schemes, and per-period broadcasts for the NP
    /// baseline.
    fn seed_events(engine: &mut Engine<SimWorld>, scenario: &Scenario) {
        let period = scenario.query.period;
        let max_k = scenario.query.result_count();
        for k in 1..=max_k {
            let deadline = SimTime::ZERO + period * k;
            engine
                .queue_mut()
                .schedule_at(deadline, SimEvent::QueryDeadline { k });
            if scenario.scheme == Scheme::None {
                engine
                    .queue_mut()
                    .schedule_at(deadline - period, SimEvent::NpLaunch { k });
            }
        }
        if scenario.scheme != Scheme::None {
            let delivery_times: Vec<SimTime> = engine
                .world()
                .profiles
                .iter()
                .map(|p| p.generated_at)
                .collect();
            for (index, at) in delivery_times.into_iter().enumerate() {
                engine
                    .queue_mut()
                    .schedule_at(at, SimEvent::ProfileDelivered(index));
            }
        }
    }

    /// The scenario this simulation was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Wall-clock breakdown of the setup phases [`Simulation::new`] just ran
    /// (a timing observation, not part of the deterministic simulation
    /// state).
    pub fn setup_breakdown(&self) -> SetupBreakdown {
        self.setup
    }

    /// Read access to the world (useful in tests).
    pub fn world(&self) -> &SimWorld {
        self.engine.world()
    }

    /// Runs the simulation to the end of the query lifetime and produces the
    /// aggregated output.
    pub fn run(mut self) -> SimulationOutput {
        let horizon = SimTime::from_secs_f64(self.scenario.query.lifetime.as_secs_f64() + 1.0);
        self.engine.run_until(horizon);
        let events_processed = self.engine.events_processed();
        let world = self.engine.into_world();
        Self::build_output(world, events_processed)
    }

    fn build_output(world: SimWorld, events_processed: u64) -> SimulationOutput {
        let scenario = &world.scenario;
        let duration_s = scenario.query.lifetime.as_secs_f64();
        let schedule = scenario.sleep_schedule();

        // Per-sleeping-node power: the baseline duty-cycle pattern plus the
        // extra activity charged during the run.
        let mut with_query = EnergyLedger::new(world.positions.len(), scenario.radio.power);
        let mut baseline = EnergyLedger::new(world.positions.len(), scenario.radio.power);
        let sleeping: Vec<NodeId> = world.plan.sleeping_nodes().collect();
        for &node in &sleeping {
            let (base_idle, base_sleep) = baseline_split(&schedule, duration_s);
            baseline.record(node, RadioState::Idle, Duration::from_secs_f64(base_idle));
            baseline.record(node, RadioState::Sleep, Duration::from_secs_f64(base_sleep));

            let tx = world.activity.tx_s[node.index()].min(duration_s);
            let rx = world.activity.rx_s[node.index()].min(duration_s);
            let extra = world.activity.extra_awake_s[node.index()]
                .min(duration_s - base_idle.min(duration_s));
            let idle = (base_idle + extra - tx - rx).max(0.0);
            let sleep = (duration_s - base_idle - extra).max(0.0);
            with_query.record(node, RadioState::Transmit, Duration::from_secs_f64(tx));
            with_query.record(node, RadioState::Receive, Duration::from_secs_f64(rx));
            with_query.record(node, RadioState::Idle, Duration::from_secs_f64(idle));
            with_query.record(node, RadioState::Sleep, Duration::from_secs_f64(sleep));
        }
        let mean_sleeping_power_w = with_query.mean_power_w(sleeping.iter().copied());
        let baseline_sleeping_power_w = baseline.mean_power_w(sleeping.iter().copied());

        let success_ratio = world.log.success_ratio(scenario.fidelity_threshold);
        let mean_fidelity = world.log.fidelity_summary().mean();
        let mean_prefetch_length = if world.prefetch_len_samples.is_empty() {
            0.0
        } else {
            world.prefetch_len_samples.iter().sum::<usize>() as f64
                / world.prefetch_len_samples.len() as f64
        };

        SimulationOutput {
            scheme: scenario.scheme,
            success_ratio,
            mean_fidelity,
            mean_sleeping_power_w,
            baseline_sleeping_power_w,
            backbone_count: world.plan.backbone_count(),
            node_count: world.positions.len(),
            frames_sent: world.channel.frames_sent(),
            frames_lost: world.channel.frames_lost(),
            trees_built: world.trees_built,
            max_prefetch_length: world.max_prefetch_len,
            mean_prefetch_length,
            events_processed,
            query_log: world.log,
        }
    }
}

/// Splits the run duration of an idle duty-cycled node into (idle, sleep)
/// seconds according to its periodic schedule.
fn baseline_split(schedule: &SleepSchedule, duration_s: f64) -> (f64, f64) {
    let idle = duration_s * schedule.duty_cycle();
    (idle, (duration_s - idle).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately small scenario so unit tests stay fast; integration
    /// tests and benches exercise the paper-scale settings.
    fn small_scenario(scheme: Scheme, sleep_s: f64, seed: u64) -> Scenario {
        Scenario::paper_default()
            .with_node_count(80)
            .with_region_side(300.0)
            .with_duration_secs(60.0)
            .with_sleep_period_secs(sleep_s)
            .with_scheme(scheme)
            .with_seed(seed)
    }

    #[test]
    fn simulation_runs_and_scores_every_query() {
        let out = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 1))
            .unwrap()
            .run();
        assert_eq!(out.query_log.len(), 30, "one record per period");
        assert!(out.trees_built > 0);
        assert!(out.events_processed > 100);
        assert!(out.backbone_count > 0 && out.backbone_count < out.node_count);
    }

    #[test]
    fn invalid_scenario_is_rejected() {
        let bad = Scenario::paper_default().with_node_count(0);
        assert!(Simulation::new(bad).is_err());
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let a = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 7))
            .unwrap()
            .run();
        let b = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 7))
            .unwrap()
            .run();
        assert_eq!(a.query_log, b.query_log);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert!((a.mean_sleeping_power_w - b.mean_sleeping_power_w).abs() < 1e-12);
    }

    #[test]
    fn jit_prefetching_beats_no_prefetching() {
        let jit = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 3))
            .unwrap()
            .run();
        let np = Simulation::new(small_scenario(Scheme::None, 9.0, 3))
            .unwrap()
            .run();
        assert!(
            jit.mean_fidelity > np.mean_fidelity + 0.1,
            "JIT fidelity {} should clearly beat NP {}",
            jit.mean_fidelity,
            np.mean_fidelity
        );
        assert!(jit.success_ratio >= np.success_ratio);
    }

    #[test]
    fn sleeping_power_stays_between_sleep_and_idle_and_above_baseline() {
        let out = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 5))
            .unwrap()
            .run();
        assert!(out.mean_sleeping_power_w >= out.baseline_sleeping_power_w - 1e-9);
        assert!(out.mean_sleeping_power_w > 0.13 && out.mean_sleeping_power_w < 0.83);
        assert!(out.query_power_overhead_w() < 0.1);
    }

    #[test]
    fn jit_keeps_a_bounded_number_of_trees_ahead() {
        let out = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 9))
            .unwrap()
            .run();
        let params = small_scenario(Scheme::JustInTime, 9.0, 9).analysis_params();
        let bound = crate::analysis::prefetch_length_jit(&params) as usize;
        assert!(
            out.max_prefetch_length <= bound + 1,
            "observed prefetch length {} must respect the Eq. 12 bound {}",
            out.max_prefetch_length,
            bound
        );
    }

    #[test]
    fn greedy_builds_trees_far_ahead_of_the_user() {
        let jit = Simulation::new(small_scenario(Scheme::JustInTime, 9.0, 11))
            .unwrap()
            .run();
        let gp = Simulation::new(small_scenario(Scheme::Greedy, 9.0, 11))
            .unwrap()
            .run();
        assert!(
            gp.max_prefetch_length > jit.max_prefetch_length,
            "greedy ({}) should hold more future trees than JIT ({})",
            gp.max_prefetch_length,
            jit.max_prefetch_length
        );
    }
}
