//! The closed-form analysis of Section 5.
//!
//! Every quantitative claim of the paper's analysis section is implemented
//! here so the benchmark harness can print the worked examples
//! (`vprfh ≈ 469 mph`, prefetch length 4 vs 58, interfering trees 4 vs 35,
//! `v* ≈ 131 mph`) and the integration tests can cross-check the simulator
//! against the bounds (storage cost, warm-up interval).

use serde::{Deserialize, Serialize};
use wsn_geom::mps_to_mph;

/// Parameters shared by the Section 5 formulas. All times in seconds, all
/// distances in metres, all speeds in metres per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisParams {
    /// Query period `Tperiod` (s).
    pub period_s: f64,
    /// Data freshness bound `Tfresh` (s).
    pub freshness_s: f64,
    /// Duty-cycle sleep period `Tsleep` (s).
    pub sleep_s: f64,
    /// Query lifetime `Td` (s).
    pub lifetime_s: f64,
    /// User speed `vuser` (m/s).
    pub user_speed_mps: f64,
    /// Prefetch-message speed `vprfh` (m/s): distance between consecutive
    /// collectors over the communication delay between them.
    pub prefetch_speed_mps: f64,
    /// Query-area radius `Rq` (m).
    pub query_radius_m: f64,
    /// Communication range `Rc` (m).
    pub comm_range_m: f64,
}

impl AnalysisParams {
    /// The concrete example of Section 5.2: a human walking at 4 m/s issuing
    /// a query every 10 s for 600 s, with `Tfresh` = 5 s and `Tsleep` = 15 s.
    pub fn storage_example() -> Self {
        AnalysisParams {
            period_s: 10.0,
            freshness_s: 5.0,
            sleep_s: 15.0,
            lifetime_s: 600.0,
            user_speed_mps: 4.0,
            prefetch_speed_mps: prefetch_speed_mps(100.0, 5, 60, 5_000.0),
            query_radius_m: 150.0,
            comm_range_m: 105.0,
        }
    }

    /// The concrete example of Section 5.4: `Rc` = 50 m, `Rq` = 150 m,
    /// `Tsleep` = 9 s, `Tfresh` = 3 s, a query every 5 s, walking at 4 m/s.
    pub fn contention_example() -> Self {
        AnalysisParams {
            period_s: 5.0,
            freshness_s: 3.0,
            sleep_s: 9.0,
            lifetime_s: 600.0,
            user_speed_mps: 4.0,
            prefetch_speed_mps: prefetch_speed_mps(100.0, 5, 60, 5_000.0),
            query_radius_m: 150.0,
            comm_range_m: 50.0,
        }
    }
}

/// The speed of a prefetch message (Section 5.2's estimate): the distance
/// between two consecutive collector nodes divided by the multi-hop
/// communication delay between them.
///
/// `distance_m` — distance between the collectors; `hops` — number of hops;
/// `message_bytes` — prefetch message size; `effective_bandwidth_bps` — the
/// per-hop goodput after MAC/routing overhead (the paper uses 5 kb/s for a
/// 38.4 kb/s MICA2 radio).
pub fn prefetch_speed_mps(
    distance_m: f64,
    hops: u32,
    message_bytes: usize,
    effective_bandwidth_bps: f64,
) -> f64 {
    let per_hop_s = (message_bytes * 8) as f64 / effective_bandwidth_bps;
    let total_s = per_hop_s * hops as f64;
    if total_s <= 0.0 {
        f64::INFINITY
    } else {
        distance_m / total_s
    }
}

/// The paper's Section 5.2 worked estimate of `vprfh` in miles per hour
/// (≈ 469 mph): 100 m across 5 hops, a 60-byte message at 5 kb/s effective
/// bandwidth.
pub fn paper_prefetch_speed_mph() -> f64 {
    mps_to_mph(prefetch_speed_mps(100.0, 5, 60, 5_000.0))
}

/// Worst-case prefetch length (number of query trees set up ahead of the
/// user) under **greedy** prefetching — Equation 11:
/// `PLgp = ⌊Td/Tperiod⌋ − ⌊Td/Tperiod · vuser/vprfh⌋`.
pub fn prefetch_length_greedy(p: &AnalysisParams) -> u64 {
    let total = (p.lifetime_s / p.period_s).floor();
    let visited = (p.lifetime_s / p.period_s * p.user_speed_mps / p.prefetch_speed_mps).floor();
    (total - visited).max(0.0) as u64
}

/// Worst-case prefetch length under **just-in-time** prefetching —
/// Equation 12: `PLjit = ⌈(Tsleep + 2·Tfresh)/Tperiod⌉ + 1`.
pub fn prefetch_length_jit(p: &AnalysisParams) -> u64 {
    ((p.sleep_s + 2.0 * p.freshness_s) / p.period_s).ceil() as u64 + 1
}

/// The query-lifetime threshold of Equation 13 beyond which greedy
/// prefetching stores strictly more state than just-in-time prefetching:
/// `Td > (Tsleep + 2·Tfresh + Tperiod) / (1 − vuser/vprfh)`.
pub fn storage_crossover_lifetime_s(p: &AnalysisParams) -> f64 {
    let denom = 1.0 - p.user_speed_mps / p.prefetch_speed_mps;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        (p.sleep_s + 2.0 * p.freshness_s + p.period_s) / denom
    }
}

/// Upper bound on the warm-up interval after a motion change — Equation 16
/// turned into a duration: `Tw = k·Tperiod` where
///
/// ```text
/// k ≤ ⌈ (Tsleep + 2·Tfresh − (1 − vuser/vprfh)·Ta) / (Tperiod·(1 − vuser/vprfh)) ⌉
/// ```
///
/// `advance_time_s` is `Ta` (may be negative). The result is clamped at zero:
/// a sufficiently early motion profile eliminates the warm-up entirely.
pub fn warmup_interval_s(p: &AnalysisParams, advance_time_s: f64) -> f64 {
    let ratio = 1.0 - p.user_speed_mps / p.prefetch_speed_mps;
    if ratio <= 0.0 {
        return f64::INFINITY;
    }
    let k = ((p.sleep_s + 2.0 * p.freshness_s - ratio * advance_time_s) / (p.period_s * ratio))
        .ceil()
        .max(0.0);
    k * p.period_s
}

/// The advance time beyond which the warm-up interval vanishes:
/// `Ta = (2·Tfresh + Tsleep) / (1 − vuser/vprfh)` (Section 5.3).
pub fn zero_warmup_advance_s(p: &AnalysisParams) -> f64 {
    let ratio = 1.0 - p.user_speed_mps / p.prefetch_speed_mps;
    if ratio <= 0.0 {
        f64::INFINITY
    } else {
        (2.0 * p.freshness_s + p.sleep_s) / ratio
    }
}

/// The approximation the paper derives for practical speeds
/// (`vprfh ≫ vuser`): `Tw ≈ Tsleep + 2·Tfresh − Ta`.
pub fn warmup_interval_approx_s(p: &AnalysisParams, advance_time_s: f64) -> f64 {
    (p.sleep_s + 2.0 * p.freshness_s - advance_time_s).max(0.0)
}

/// Number of pickup points whose roots lie close enough to interfere with a
/// given tree — Equation 17: `Ms = ⌈(4·Rq + 2·Rc)/(vuser·Tperiod)⌉`.
pub fn interference_span_trees(p: &AnalysisParams) -> u64 {
    ((4.0 * p.query_radius_m + 2.0 * p.comm_range_m) / (p.user_speed_mps * p.period_s)).ceil()
        as u64
}

/// Number of trees whose setup can overlap in time under **greedy**
/// prefetching — Equation 18 (upper bound):
/// `Mt−gp ≤ ⌈(Tsleep + Tfresh)·vprfh / (Tperiod·vuser)⌉`.
pub fn overlapping_setups_greedy(p: &AnalysisParams) -> u64 {
    (((p.sleep_s + p.freshness_s) * p.prefetch_speed_mps) / (p.period_s * p.user_speed_mps)).ceil()
        as u64
}

/// Number of trees whose setup can overlap in time under **just-in-time**
/// prefetching: `Mt−jit = ⌈Ttree/Tperiod⌉` with `Ttree ≤ Tsleep + Tfresh`.
pub fn overlapping_setups_jit(p: &AnalysisParams) -> u64 {
    ((p.sleep_s + p.freshness_s) / p.period_s).ceil() as u64
}

/// The interference length (number of trees interfering with a given tree's
/// setup) for greedy prefetching: `Mgp = min(Mt−gp, Ms)`.
pub fn interference_length_greedy(p: &AnalysisParams) -> u64 {
    overlapping_setups_greedy(p).min(interference_span_trees(p))
}

/// The interference length for just-in-time prefetching:
/// `Mjit = min(Mt−jit, Ms)`.
pub fn interference_length_jit(p: &AnalysisParams) -> u64 {
    overlapping_setups_jit(p).min(interference_span_trees(p))
}

/// The user-speed threshold `v* = (2·Rc + 4·Rq)/(Tsleep + Tfresh)` (Section
/// 5.4) below which just-in-time prefetching causes strictly less contention
/// than greedy prefetching. Returned in metres per second.
pub fn contention_speed_threshold_mps(p: &AnalysisParams) -> f64 {
    (2.0 * p.comm_range_m + 4.0 * p.query_radius_m) / (p.sleep_s + p.freshness_s)
}

// --- N-user extensions of the Eq. 17–18 contention closed forms -----------
//
// The paper derives the interference quantities for a single mobile user.
// With `n` independent users whose pickup points land in the same
// neighbourhood (the worst case the tree cache is built for), a naive
// one-tree-per-user deployment multiplies both the spatial span and the
// temporal overlap by `n`; a shared deployment collapses every user in a
// lattice cell onto one tree, so its interference stays at the single-user
// value whatever `n` is.

/// `n`-user extension of Equation 17: with `n` users sweeping pickup points
/// through the same neighbourhood, `Ms(n) = n · Ms`.
pub fn interference_span_trees_n(p: &AnalysisParams, n: u64) -> u64 {
    n * interference_span_trees(p)
}

/// `n`-user extension of Equation 18 for greedy prefetching:
/// `Mt−gp(n) ≤ n · Mt−gp` (each user's setups overlap independently).
pub fn overlapping_setups_greedy_n(p: &AnalysisParams, n: u64) -> u64 {
    n * overlapping_setups_greedy(p)
}

/// `n`-user extension of the just-in-time temporal overlap:
/// `Mt−jit(n) = n · Mt−jit`.
pub fn overlapping_setups_jit_n(p: &AnalysisParams, n: u64) -> u64 {
    n * overlapping_setups_jit(p)
}

/// `n`-user interference length for greedy prefetching without tree sharing:
/// `Mgp(n) = min(Mt−gp(n), Ms(n))`.
pub fn interference_length_greedy_n(p: &AnalysisParams, n: u64) -> u64 {
    overlapping_setups_greedy_n(p, n).min(interference_span_trees_n(p, n))
}

/// `n`-user interference length for just-in-time prefetching without tree
/// sharing: `Mjit(n) = min(Mt−jit(n), Ms(n))`.
pub fn interference_length_jit_n(p: &AnalysisParams, n: u64) -> u64 {
    overlapping_setups_jit_n(p, n).min(interference_span_trees_n(p, n))
}

/// Interference length for `n` just-in-time users multiplexed through the
/// shared tree cache: co-located users join one tree instead of building `n`,
/// so the interference stays at the single-user `Mjit` independent of `n`.
pub fn shared_interference_length_jit(p: &AnalysisParams) -> u64 {
    interference_length_jit(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vprfh_matches_the_papers_469_mph() {
        let mph = paper_prefetch_speed_mph();
        assert!(
            (mph - 466.0).abs() < 10.0,
            "expected roughly 469 mph as in the paper, got {mph:.1}"
        );
    }

    #[test]
    fn storage_example_matches_4_vs_58_trees() {
        let p = AnalysisParams::storage_example();
        // Eq. 12: ceil((15 + 10)/10) + 1 = 4.
        assert_eq!(prefetch_length_jit(&p), 4);
        // Eq. 11: 60 - floor(60 * 4/208.6) = 60 - 1 = 59; the paper quotes 58
        // (it floors the speed ratio slightly differently). Accept 58..=59.
        let gp = prefetch_length_greedy(&p);
        assert!(
            (58..=59).contains(&gp),
            "expected about 58 trees for greedy prefetching, got {gp}"
        );
        // The headline claim: greedy stores an order of magnitude more state.
        assert!(gp as f64 / prefetch_length_jit(&p) as f64 > 10.0);
    }

    #[test]
    fn storage_crossover_is_small_for_realistic_speeds() {
        let p = AnalysisParams::storage_example();
        let td = storage_crossover_lifetime_s(&p);
        // (15 + 10 + 10) / (1 - 4/208.6) ≈ 35.7 s — any realistic query
        // lifetime exceeds it.
        assert!(td > 30.0 && td < 40.0, "crossover {td}");
        assert!(p.lifetime_s > td);
    }

    #[test]
    fn contention_example_matches_4_vs_35_trees_and_131_mph() {
        let p = AnalysisParams::contention_example();
        // v* = (2*50 + 4*150)/(9+3) = 58.33 m/s ≈ 130.5 mph.
        let v_star = contention_speed_threshold_mps(&p);
        assert!(
            (mps_to_mph(v_star) - 131.0).abs() < 2.0,
            "v* = {} mph",
            mps_to_mph(v_star)
        );
        // Mjit = ceil((9+3)/5) = 3 … the paper rounds its prose to "about 4".
        let jit = interference_length_jit(&p);
        assert!((3..=4).contains(&jit), "Mjit = {jit}");
        // Ms = ceil((600+100)/20) = 35 = Mgp (Mt-gp is enormous).
        assert_eq!(interference_span_trees(&p), 35);
        assert_eq!(interference_length_greedy(&p), 35);
        assert!(interference_length_greedy(&p) > interference_length_jit(&p));
    }

    #[test]
    fn greedy_overlap_grows_with_prefetch_speed() {
        let mut p = AnalysisParams::contention_example();
        let slow = overlapping_setups_greedy(&p);
        p.prefetch_speed_mps *= 10.0;
        let fast = overlapping_setups_greedy(&p);
        assert!(fast > slow);
        // JIT overlap does not depend on the prefetch speed.
        assert_eq!(
            overlapping_setups_jit(&p),
            overlapping_setups_jit(&AnalysisParams::contention_example())
        );
    }

    #[test]
    fn warmup_interval_shrinks_with_advance_time_and_vanishes() {
        let p = AnalysisParams {
            period_s: 2.0,
            freshness_s: 1.0,
            sleep_s: 9.0,
            lifetime_s: 500.0,
            user_speed_mps: 4.0,
            prefetch_speed_mps: 200.0,
            query_radius_m: 150.0,
            comm_range_m: 105.0,
        };
        let w_late = warmup_interval_s(&p, -8.0);
        let w_zero = warmup_interval_s(&p, 0.0);
        let w_early = warmup_interval_s(&p, 6.0);
        assert!(w_late > w_zero && w_zero > w_early);
        // Approximation: Tw ≈ Tsleep + 2 Tfresh − Ta = 11 − Ta.
        assert!((warmup_interval_approx_s(&p, 0.0) - 11.0).abs() < 1e-9);
        assert!((w_zero - 11.0).abs() <= p.period_s + 1e-9);
        // Early enough profiles eliminate the warm-up (threshold ≈ 11.2 s).
        let threshold = zero_warmup_advance_s(&p);
        assert!((threshold - 11.0 / (1.0 - 4.0 / 200.0)).abs() < 1e-9);
        assert_eq!(warmup_interval_s(&p, threshold + 0.5), 0.0);
    }

    #[test]
    fn warmup_approx_close_to_exact_for_fast_prefetch() {
        let p = AnalysisParams {
            prefetch_speed_mps: 10_000.0,
            ..AnalysisParams::contention_example()
        };
        for ta in [-10.0, -3.0, 0.0, 5.0, 12.0] {
            let exact = warmup_interval_s(&p, ta);
            let approx = warmup_interval_approx_s(&p, ta);
            assert!(
                (exact - approx).abs() <= p.period_s + 1e-6,
                "Ta={ta}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn prefetch_speed_handles_degenerate_inputs() {
        assert!(prefetch_speed_mps(100.0, 0, 60, 5_000.0).is_infinite());
        assert!(prefetch_speed_mps(100.0, 5, 60, 5_000.0) > 0.0);
    }

    #[test]
    fn interference_length_never_exceeds_the_spatial_span() {
        let p = AnalysisParams::contention_example();
        assert!(interference_length_greedy(&p) <= interference_span_trees(&p));
        assert!(interference_length_jit(&p) <= interference_span_trees(&p));
    }

    #[test]
    fn n_user_forms_collapse_to_the_single_user_values_at_n_1() {
        let p = AnalysisParams::contention_example();
        assert_eq!(
            interference_span_trees_n(&p, 1),
            interference_span_trees(&p)
        );
        assert_eq!(
            overlapping_setups_greedy_n(&p, 1),
            overlapping_setups_greedy(&p)
        );
        assert_eq!(overlapping_setups_jit_n(&p, 1), overlapping_setups_jit(&p));
        assert_eq!(
            interference_length_greedy_n(&p, 1),
            interference_length_greedy(&p)
        );
        assert_eq!(
            interference_length_jit_n(&p, 1),
            interference_length_jit(&p)
        );
        assert_eq!(
            shared_interference_length_jit(&p),
            interference_length_jit(&p)
        );
    }

    #[test]
    fn naive_n_user_interference_grows_monotonically() {
        let p = AnalysisParams::contention_example();
        let mut prev_jit = 0;
        let mut prev_greedy = 0;
        for n in 1..=128 {
            let jit = interference_length_jit_n(&p, n);
            let greedy = interference_length_greedy_n(&p, n);
            assert!(jit > prev_jit, "jit interference must grow with n");
            assert!(greedy >= prev_greedy);
            assert!(jit <= interference_span_trees_n(&p, n));
            prev_jit = jit;
            prev_greedy = greedy;
        }
    }

    #[test]
    fn shared_trees_beat_the_naive_n_user_closed_form_for_n_above_1() {
        let p = AnalysisParams::contention_example();
        let shared = shared_interference_length_jit(&p);
        for n in [2, 10, 100, 250] {
            assert!(
                shared < interference_length_jit_n(&p, n),
                "sharing must cut interference at n={n}"
            );
        }
        // And the paper's single-user numbers still anchor the scale:
        // Mjit = 3, Ms = 35 in the contention example.
        assert_eq!(interference_length_jit_n(&p, 10), 30);
        assert_eq!(interference_length_jit_n(&p, 100), 300);
    }
}
