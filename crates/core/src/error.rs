//! Error types for the MobiQuery crate.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to the simulation or analysis API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The explanation of what was invalid.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("query period must be positive");
        assert!(format!("{e}").contains("query period"));
        assert_eq!(e.message(), "query period must be positive");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ConfigError::new("x"));
    }
}
